"""Tests for the compiled gate-kernel execution engine.

Every specialised kernel (fused diagonal segments, the CX·RZ·CX peephole,
low/high/middle fused single-qubit blocks, two-qubit kernels, block-swap
CX/SWAP) is checked against the seed generic dense-dispatch path, which
survives behind ``StatevectorSimulator(compiled=False)`` as an independent
oracle.
"""

import numpy as np
import pytest

from repro.exceptions import CircuitError, SimulationError
from repro.graphs.generators import erdos_renyi_graph, random_regular_graph
from repro.graphs.maxcut import MaxCutProblem
from repro.graphs.model import Graph
from repro.qaoa.circuit_builder import (
    build_maxcut_qaoa_circuit,
    build_parametric_qaoa_circuit,
)
from repro.qaoa.cost import ExpectationEvaluator
from repro.qaoa.fast_backend import FastMaxCutEvaluator
from repro.qaoa.parameters import random_parameters
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.engine import CompiledProgram, compile_circuit
from repro.quantum.gates import GATE_REGISTRY
from repro.quantum.operators import PauliSum
from repro.quantum.parameter import Parameter
from repro.quantum.simulator import StatevectorSimulator

ATOL = 1e-12


def _random_circuit(num_qubits: int, size: int, rng, names=None) -> QuantumCircuit:
    """A random fully-bound circuit drawing from the whole gate registry."""
    names = list(names if names is not None else GATE_REGISTRY)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(size):
        name = names[rng.integers(len(names))]
        definition = GATE_REGISTRY[name]
        qubits = rng.choice(num_qubits, size=definition.num_qubits, replace=False)
        params = rng.uniform(-np.pi, np.pi, size=definition.num_params)
        circuit.add_gate(name, [int(q) for q in qubits], [float(p) for p in params])
    return circuit


def _states_agree(circuit, parameter_values=None, atol=ATOL):
    compiled = StatevectorSimulator().run(circuit, parameter_values)
    generic = StatevectorSimulator(compiled=False).run(circuit, parameter_values)
    np.testing.assert_allclose(compiled.data, generic.data, atol=atol)


class TestKernelsAgainstGenericOracle:
    @pytest.mark.parametrize("name", sorted(GATE_REGISTRY))
    def test_every_gate_matches_generic_path(self, name, rng):
        """Each registry gate, embedded in a random context, is kernel-exact."""
        definition = GATE_REGISTRY[name]
        num_qubits = 4
        for _ in range(3):
            circuit = _random_circuit(num_qubits, 4, rng, names=["h", "cx", "t", "ry"])
            qubits = rng.choice(num_qubits, size=definition.num_qubits, replace=False)
            params = rng.uniform(-np.pi, np.pi, size=definition.num_params)
            circuit.add_gate(name, [int(q) for q in qubits], [float(p) for p in params])
            circuit = circuit.compose(_random_circuit(num_qubits, 4, rng, names=["h", "cx", "s"]))
            _states_agree(circuit)

    @pytest.mark.parametrize("num_qubits", [2, 3, 5, 7, 9])
    def test_random_circuits_match_generic_path(self, num_qubits, rng):
        """Deep random circuits over the full registry, several register sizes."""
        for _ in range(3):
            circuit = _random_circuit(num_qubits, 30, rng)
            _states_agree(circuit)

    def test_fused_diagonal_run(self, rng):
        """A long run of diagonal gates collapses to one op and stays exact."""
        circuit = QuantumCircuit(5)
        for q in range(5):
            circuit.h(q)
        for q in range(5):
            circuit.rz(float(rng.uniform(-3, 3)), q)
            circuit.t(q)
        circuit.cz(0, 3).cz(1, 4).rzz(0.7, 0, 2).crz(1.3, 3, 1).s(2).z(4)
        program = compile_circuit(circuit)
        # one fused single-qubit block for the H layer + one diagonal segment
        assert program.num_operations == 2
        _states_agree(circuit)

    def test_cx_rz_cx_peephole_becomes_diagonal(self, rng):
        """The RZZ decomposition emitted by the QAOA builder fuses away."""
        problem = MaxCutProblem(erdos_renyi_graph(6, 0.6, seed=3))
        params = random_parameters(2, rng)
        circuit = build_maxcut_qaoa_circuit(problem, params)
        program = compile_circuit(circuit)
        summary = program.operation_summary()
        assert "CXOp" not in summary  # every CX belongs to a fused sandwich
        assert summary["DiagonalOp"] == 2  # one per QAOA layer
        _states_agree(circuit)

    def test_interrupted_sandwich_is_not_fused(self):
        """CX pairs that do not close a RZ sandwich stay explicit CX kernels."""
        circuit = QuantumCircuit(3).h(0).cx(0, 1).rz(0.5, 0).cx(0, 1)  # rz on control
        program = compile_circuit(circuit)
        assert program.operation_summary().get("CXOp", 0) == 2
        _states_agree(circuit)

    def test_identity_only_run_compiles_to_nothing(self):
        circuit = QuantumCircuit(3).id(0).id(1).id(2)
        assert compile_circuit(circuit).num_operations == 0
        _states_agree(circuit)

    def test_unitary_matches_generic_and_is_unitary(self, rng):
        circuit = _random_circuit(4, 20, rng)
        compiled = StatevectorSimulator().unitary(circuit)
        generic = StatevectorSimulator(compiled=False).unitary(circuit)
        np.testing.assert_allclose(compiled, generic, atol=ATOL)
        np.testing.assert_allclose(
            compiled @ compiled.conj().T, np.eye(16), atol=1e-10
        )


class TestParametricBinding:
    def _parametric_circuit(self):
        theta = Parameter("theta")
        phi = Parameter("phi")
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).h(2)
        circuit.rx(theta, 0)
        circuit.rz(theta * -2.0, 1)  # affine expression sharing theta
        circuit.cx(0, 1).rz(phi * 0.5, 1).cx(0, 1)  # peephole with expression
        circuit.ry(phi, 2)
        circuit.p(theta + 0.25, 2)
        return circuit, theta, phi

    def test_sequence_and_dict_bindings_agree(self):
        circuit, theta, phi = self._parametric_circuit()
        sim = StatevectorSimulator()
        by_seq = sim.run(circuit, [0.3, 1.1])
        by_dict = sim.run(circuit, {theta: 0.3, phi: 1.1})
        np.testing.assert_allclose(by_seq.data, by_dict.data, atol=ATOL)

    def test_rebinding_matches_generic_path(self):
        circuit, _, _ = self._parametric_circuit()
        for values in ([0.0, 0.0], [0.7, -1.3], [2.9, 0.4]):
            _states_agree(circuit, values)

    def test_missing_bindings_raise(self):
        circuit, theta, _ = self._parametric_circuit()
        sim = StatevectorSimulator()
        with pytest.raises(SimulationError):
            sim.run(circuit)
        with pytest.raises(CircuitError):
            sim.run(circuit, {theta: 0.3})
        with pytest.raises(CircuitError):
            sim.run(circuit, [0.3])

    def test_program_reports_parameters(self):
        circuit, theta, phi = self._parametric_circuit()
        program = CompiledProgram(circuit)
        assert program.parameters == [theta, phi]
        assert program.num_parameters == 2


class TestStructureCache:
    def test_repeated_binds_equal_fresh_builds(self, rng):
        """One circuit object re-bound many times == rebuilding from scratch."""
        problem = MaxCutProblem(erdos_renyi_graph(7, 0.5, seed=11))
        circuit, _, _ = build_parametric_qaoa_circuit(problem, 2)
        cached_sim = StatevectorSimulator()
        for _ in range(5):
            values = rng.uniform(-np.pi, np.pi, size=4)
            cached = cached_sim.run(circuit, values)
            fresh = StatevectorSimulator().run(circuit, values)
            np.testing.assert_allclose(cached.data, fresh.data, atol=ATOL)

    def test_program_object_is_reused(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        sim = StatevectorSimulator()
        assert sim.compile(circuit) is sim.compile(circuit)

    def test_mutated_circuit_is_recompiled(self):
        circuit = QuantumCircuit(2).h(0)
        sim = StatevectorSimulator()
        before = sim.run(circuit)
        circuit.x(1)  # bumps circuit.version
        after = sim.run(circuit)
        assert before.probability("00") == pytest.approx(0.5)
        assert after.probability("10") == pytest.approx(0.5)

    def test_evaluator_reuses_circuit_across_evaluations(self, triangle_problem, rng):
        evaluator = ExpectationEvaluator(triangle_problem, 2, context="circuit")
        simulator = evaluator._program._simulator
        program = simulator.compile(evaluator._program._circuit)
        for _ in range(4):
            evaluator.expectation(random_parameters(2, rng).to_vector())
        assert simulator.compile(evaluator._program._circuit) is program


class TestBatchedExecution:
    def test_run_batch_matches_scalar_runs(self, rng):
        problem = MaxCutProblem(erdos_renyi_graph(6, 0.5, seed=5))
        circuit, _, _ = build_parametric_qaoa_circuit(problem, 2)
        sim = StatevectorSimulator()
        order = circuit.parameters
        matrix = rng.uniform(-np.pi, np.pi, size=(9, len(order)))
        columns = sim.run_batch(circuit, matrix)
        assert columns.shape == (2**6, 9)
        for index, row in enumerate(matrix):
            np.testing.assert_allclose(
                columns[:, index], sim.run(circuit, row).data, atol=ATOL
            )

    def test_run_batch_single_row_promotion(self):
        theta = Parameter("theta")
        circuit = QuantumCircuit(1).rx(theta, 0)
        sim = StatevectorSimulator()
        columns = sim.run_batch(circuit, [0.8])
        np.testing.assert_allclose(columns[:, 0], sim.run(circuit, [0.8]).data, atol=ATOL)

    def test_run_batch_wrong_width_raises(self):
        theta = Parameter("theta")
        circuit = QuantumCircuit(1).rx(theta, 0)
        with pytest.raises(CircuitError):
            StatevectorSimulator().run_batch(circuit, np.zeros((3, 2)))

    def test_expectation_batch_matches_scalar(self, rng):
        problem = MaxCutProblem(random_regular_graph(3, 8, seed=2))
        evaluator = ExpectationEvaluator(problem, 2, context="circuit")
        matrix = np.array([random_parameters(2, seed).to_vector() for seed in range(6)])
        batched = evaluator.expectation_batch(matrix)
        scalar = np.array([evaluator.expectation(row) for row in matrix])
        np.testing.assert_allclose(batched, scalar, atol=ATOL)

    def test_expectation_batch_empty(self, triangle_problem):
        evaluator = ExpectationEvaluator(triangle_problem, 1, context="circuit")
        assert evaluator.expectation_batch(np.zeros((0, 2))).shape == (0,)

    def test_simulator_expectation_batch_non_diagonal_observable(self, rng):
        theta = Parameter("theta")
        circuit = QuantumCircuit(2).h(0).rx(theta, 1).cx(0, 1)
        observable = PauliSum([(0.7, "XI"), (0.4, "ZY"), (1.1, "ZZ")])
        sim = StatevectorSimulator()
        matrix = rng.uniform(-np.pi, np.pi, size=(5, 1))
        batched = sim.expectation_batch(circuit, observable, matrix)
        scalar = [sim.expectation(circuit, observable, row) for row in matrix]
        np.testing.assert_allclose(batched, scalar, atol=ATOL)

    def test_generic_mode_run_batch_matches_compiled(self, rng):
        theta = Parameter("theta")
        circuit = QuantumCircuit(3).h(0).rx(theta, 1).cx(1, 2)
        matrix = rng.uniform(-np.pi, np.pi, size=(4, 1))
        compiled = StatevectorSimulator().run_batch(circuit, matrix)
        generic = StatevectorSimulator(compiled=False).run_batch(circuit, matrix)
        np.testing.assert_allclose(compiled, generic, atol=ATOL)

    def test_executed_circuits_counts_batch_columns(self):
        theta = Parameter("theta")
        circuit = QuantumCircuit(1).rx(theta, 0)
        sim = StatevectorSimulator()
        sim.run_batch(circuit, np.zeros((5, 1)))
        assert sim.executed_circuits == 5

    def test_generic_mode_run_batch_does_not_compile(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        sim = StatevectorSimulator(compiled=False)
        sim.run_batch(circuit, np.zeros((2, 0)))
        assert len(sim._programs) == 0  # the seed baseline never compiles

    def test_unitary_enforces_max_qubits_in_both_modes(self):
        circuit = QuantumCircuit(3).h(0)
        for compiled in (True, False):
            sim = StatevectorSimulator(max_qubits=2, compiled=compiled)
            with pytest.raises(SimulationError):
                sim.unitary(circuit)


class TestBackendEquivalence:
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_fast_and_circuit_backends_agree(self, depth, rng):
        problem = MaxCutProblem(erdos_renyi_graph(8, 0.4, seed=depth))
        fast = ExpectationEvaluator(problem, depth, context="fast")
        circuit = ExpectationEvaluator(problem, depth, context="circuit")
        for _ in range(3):
            vector = random_parameters(depth, rng).to_vector()
            assert circuit.expectation(vector) == pytest.approx(
                fast.expectation(vector), abs=1e-9
            )

    def test_backends_agree_on_weighted_graph(self, rng):
        graph = Graph(5, [(0, 1, 0.5), (1, 2, 2.0), (2, 3, -1.25), (3, 4, 0.75), (0, 4, 1.5)])
        problem = MaxCutProblem(graph)
        fast = FastMaxCutEvaluator(problem)
        circuit_ev = ExpectationEvaluator(problem, 3, context="circuit")
        for _ in range(3):
            parameters = random_parameters(3, rng)
            assert circuit_ev.expectation(parameters.to_vector()) == pytest.approx(
                fast.expectation(parameters), abs=1e-9
            )

    def test_batched_backends_agree(self, rng):
        problem = MaxCutProblem(erdos_renyi_graph(7, 0.5, seed=9))
        matrix = np.array([random_parameters(2, seed).to_vector() for seed in range(8)])
        fast = ExpectationEvaluator(problem, 2, context="fast")
        circuit = ExpectationEvaluator(problem, 2, context="circuit")
        np.testing.assert_allclose(
            circuit.expectation_batch(matrix), fast.expectation_batch(matrix), atol=1e-9
        )

    def test_statevectors_agree_up_to_global_phase(self, rng):
        problem = MaxCutProblem(erdos_renyi_graph(6, 0.5, seed=21))
        parameters = random_parameters(3, rng)
        circuit = build_maxcut_qaoa_circuit(problem, parameters)
        compiled_state = StatevectorSimulator().run(circuit)
        fast_state = FastMaxCutEvaluator(problem).statevector(parameters)
        assert compiled_state.equiv(fast_state)


class TestPauliSumDiagonalCache:
    def test_diagonal_is_cached_and_copied(self):
        operator = PauliSum([(1.0, "ZZI"), (0.5, "IZZ"), (0.25, "III")])
        view = operator.z_diagonal_view()
        assert operator.z_diagonal_view() is view  # cached
        copy = operator.z_diagonal()
        assert copy is not view
        np.testing.assert_allclose(copy, view)
        copy[0] = 123.0  # mutating the copy must not poison the cache
        assert operator.z_diagonal_view()[0] != 123.0

    def test_add_term_invalidates_cache(self):
        operator = PauliSum([(1.0, "ZI")])
        before = operator.z_diagonal()
        operator.add_term(2.0, "IZ")
        after = operator.z_diagonal()
        assert not np.allclose(before, after)
        np.testing.assert_allclose(
            after, PauliSum([(1.0, "ZI"), (2.0, "IZ")]).z_diagonal()
        )

    def test_expectation_uses_cache_consistently(self, rng):
        problem = MaxCutProblem(erdos_renyi_graph(5, 0.6, seed=4))
        hamiltonian = problem.cost_hamiltonian()
        state = FastMaxCutEvaluator(problem).statevector(random_parameters(1, rng))
        first = hamiltonian.expectation(state)
        second = hamiltonian.expectation(state)
        assert first == pytest.approx(second, abs=0)
        assert first == pytest.approx(
            float(np.dot(state.probabilities(), hamiltonian.z_diagonal())), abs=1e-12
        )
