"""A circuit breaker for the solver service's execution backend.

A persistently failing backend should shed load *fast* — burning the full
retry schedule on every queued job turns one unhealthy dependency into a
stalled worker pool.  :class:`CircuitBreaker` implements the classic
three-state machine:

* **closed** — normal operation.  Outcomes are recorded into a sliding
  window; when the window holds at least *min_failures* failures **and**
  the failure rate reaches *failure_rate*, the breaker opens.
* **open** — :meth:`allow` answers ``False`` (callers fail fast with
  :class:`~repro.exceptions.CircuitOpenError`) until *recovery_time*
  seconds pass on the injected clock.
* **half-open** — up to *probe_budget* probes are admitted.  Any probe
  failure reopens the breaker (fresh recovery window); *probe_budget*
  consecutive probe successes close it and clear the window.

The clock is injectable so open→half-open transitions are exact in tests;
an optional listener receives every state transition (the service wires it
into :class:`~repro.service.metrics.ServiceMetrics`).  All methods are
thread-safe.

Examples
--------
>>> now = [0.0]
>>> breaker = CircuitBreaker(min_failures=2, recovery_time=10.0, clock=lambda: now[0])
>>> for _ in range(2):
...     _ = breaker.allow(); breaker.record_failure()
>>> breaker.state
'open'
>>> breaker.allow()
False
>>> now[0] = 11.0
>>> breaker.allow()  # half-open probe admitted
True
>>> breaker.record_success()
>>> breaker.state
'closed'
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from repro.exceptions import ConfigurationError

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed → open → half-open failure gate with an injectable clock.

    Parameters
    ----------
    min_failures:
        Minimum number of failures in the sliding window before the breaker
        may open (absolute floor, so one early failure in an empty window
        cannot trip it).
    failure_rate:
        Failure fraction of the window that, together with *min_failures*,
        opens the breaker.
    window:
        Number of recent outcomes retained.
    recovery_time:
        Seconds the breaker stays open before admitting half-open probes.
    probe_budget:
        Consecutive probe successes required to close from half-open (also
        the number of concurrent probes admitted).
    clock:
        Injectable monotonic time source.
    listener:
        Optional ``listener(old_state, new_state)`` callback fired outside
        the lock on every transition.
    name:
        Label used in ``repr`` and transition reporting (e.g. the backend
        name the breaker guards).
    """

    def __init__(
        self,
        *,
        min_failures: int = 5,
        failure_rate: float = 0.5,
        window: int = 32,
        recovery_time: float = 30.0,
        probe_budget: int = 2,
        clock: Callable[[], float] = time.monotonic,
        listener: Optional[Callable[[str, str], None]] = None,
        name: str = "backend",
    ):
        if min_failures < 1:
            raise ConfigurationError(f"min_failures must be >= 1, got {min_failures}")
        if not 0.0 < failure_rate <= 1.0:
            raise ConfigurationError(
                f"failure_rate must be in (0, 1], got {failure_rate}"
            )
        if window < min_failures:
            raise ConfigurationError(
                f"window ({window}) must be >= min_failures ({min_failures})"
            )
        if recovery_time < 0:
            raise ConfigurationError(
                f"recovery_time must be >= 0, got {recovery_time}"
            )
        if probe_budget < 1:
            raise ConfigurationError(f"probe_budget must be >= 1, got {probe_budget}")
        self.name = str(name)
        self._min_failures = int(min_failures)
        self._failure_rate = float(failure_rate)
        self._recovery_time = float(recovery_time)
        self._probe_budget = int(probe_budget)
        self._clock = clock
        self._listener = listener
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: "deque[bool]" = deque(maxlen=int(window))
        self._opened_at: Optional[float] = None
        self._probes_inflight = 0
        self._probe_successes = 0
        self._rejections = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, refreshing open → half-open on the clock."""
        with self._lock:
            self._refresh_locked()
            return self._state

    @property
    def rejections(self) -> int:
        """How many :meth:`allow` calls were rejected while open."""
        with self._lock:
            return self._rejections

    @property
    def failure_count(self) -> int:
        """Failures currently in the sliding window."""
        with self._lock:
            return sum(1 for ok in self._outcomes if not ok)

    # ------------------------------------------------------------------
    # Gate
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the caller may attempt work right now.

        In half-open state each ``True`` answer consumes one probe slot;
        callers must report the probe's outcome through
        :meth:`record_success` / :meth:`record_failure`.
        """
        transition = None
        with self._lock:
            transition = self._refresh_locked()
            if self._state == CLOSED:
                allowed = True
            elif self._state == HALF_OPEN:
                if self._probes_inflight < self._probe_budget:
                    self._probes_inflight += 1
                    allowed = True
                else:
                    self._rejections += 1
                    allowed = False
            else:
                self._rejections += 1
                allowed = False
        self._notify(transition)
        return allowed

    def record_success(self) -> None:
        """Report one successful operation."""
        transition = None
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self._probe_budget:
                    transition = self._transition_locked(CLOSED)
                    self._outcomes.clear()
            else:
                self._outcomes.append(True)
        self._notify(transition)

    def record_failure(self) -> None:
        """Report one failed operation (may trip or re-open the breaker)."""
        transition = None
        with self._lock:
            if self._state == HALF_OPEN:
                # A failed probe re-opens immediately with a fresh window.
                transition = self._transition_locked(OPEN)
            elif self._state == CLOSED:
                self._outcomes.append(False)
                failures = sum(1 for ok in self._outcomes if not ok)
                if (
                    failures >= self._min_failures
                    and failures / len(self._outcomes) >= self._failure_rate
                ):
                    transition = self._transition_locked(OPEN)
            # Failures reported while OPEN (e.g. in-flight work finishing
            # after the trip) don't change state.
        self._notify(transition)

    def add_listener(self, listener: Callable[[str, str], None]) -> None:
        """Append *listener* to the transition callbacks (chains with any
        listener given at construction)."""
        previous = self._listener
        if previous is None:
            self._listener = listener
            return

        def chained(old_state: str, new_state: str) -> None:
            previous(old_state, new_state)
            listener(old_state, new_state)

        self._listener = chained

    def reset(self) -> None:
        """Force-close the breaker and clear its window."""
        with self._lock:
            transition = self._transition_locked(CLOSED)
            self._outcomes.clear()
        self._notify(transition)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_locked(self):
        """OPEN → HALF_OPEN once the recovery window has elapsed."""
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self._recovery_time
        ):
            return self._transition_locked(HALF_OPEN)
        return None

    def _transition_locked(self, new_state: str):
        old_state = self._state
        if old_state == new_state:
            return None
        self._state = new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
        if new_state in (OPEN, HALF_OPEN, CLOSED):
            self._probes_inflight = 0
            self._probe_successes = 0
        return (old_state, new_state)

    def _notify(self, transition) -> None:
        if transition is not None and self._listener is not None:
            self._listener(*transition)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
            f"failures={self.failure_count}, rejections={self.rejections})"
        )
