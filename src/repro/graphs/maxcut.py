"""MaxCut problem definition and exact (brute-force) reference solutions.

For a graph ``G = (V, E)`` with weights ``w_uv``, the MaxCut objective of a
binary assignment ``x`` is ``C(x) = sum_{(u,v) in E} w_uv * [x_u != x_v]``.
QAOA encodes this as the cost Hamiltonian

    H_C = sum_{(u,v) in E} (w_uv / 2) * (I - Z_u Z_v)

whose expectation value in the QAOA output state is the quantity the
classical optimizer maximises.  Because the graphs in the paper have 8 nodes
the exact optimum is obtained by enumerating all ``2^n`` assignments, which
also provides the denominator of the approximation ratio.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.model import Graph
from repro.quantum.operators import PauliSum

Assignment = Union[str, Sequence[int]]


class MaxCutProblem:
    """A MaxCut instance over a :class:`~repro.graphs.model.Graph`."""

    def __init__(self, graph: Graph):
        if graph.num_edges == 0:
            raise GraphError("MaxCut is trivial on a graph with no edges")
        self._graph = graph
        self._cut_table: Optional[np.ndarray] = None
        self._cache_key: Optional[str] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying problem graph."""
        return self._graph

    @property
    def num_qubits(self) -> int:
        """One qubit per graph node."""
        return self._graph.num_nodes

    @property
    def name(self) -> str:
        """Name inherited from the graph."""
        return self._graph.name

    def cache_key(self) -> str:
        """A stable content hash of the problem graph (hex digest).

        Keyed on structure (node count + sorted weighted edge list), not on
        the graph's name or object identity, so two processes solving the
        same instance derive the same key.  Memoised — the problem already
        treats its graph as frozen (the cut table is cached the same way).
        """
        if self._cache_key is None:
            from repro.execution.keys import graph_cache_key

            self._cache_key = graph_cache_key(self._graph)
        return self._cache_key

    # ------------------------------------------------------------------
    # Classical cut evaluation
    # ------------------------------------------------------------------
    def _as_bits(self, assignment: Assignment) -> np.ndarray:
        if isinstance(assignment, str):
            if len(assignment) != self.num_qubits or any(
                ch not in "01" for ch in assignment
            ):
                raise GraphError(
                    f"assignment string must have {self.num_qubits} binary digits, "
                    f"got {assignment!r}"
                )
            # Bit-string labels are MSB first: character k is node n-1-k.
            return np.array([int(ch) for ch in reversed(assignment)], dtype=int)
        bits = np.asarray(list(assignment), dtype=int)
        if bits.size != self.num_qubits or not np.all((bits == 0) | (bits == 1)):
            raise GraphError(
                f"assignment must be {self.num_qubits} binary values, got {assignment!r}"
            )
        return bits

    def cut_value(self, assignment: Assignment) -> float:
        """Total weight of edges cut by *assignment*.

        *assignment* is either a bit-string (most-significant node first, the
        same convention as measurement outcomes) or a sequence indexed by
        node.
        """
        bits = self._as_bits(assignment)
        return float(
            sum(
                weight
                for u, v, weight in self._graph.edges
                if bits[u] != bits[v]
            )
        )

    def cut_values_table(self) -> np.ndarray:
        """Cut value of every basis state, indexed by the basis integer.

        Index ``k`` corresponds to the computational basis state whose bit for
        node ``u`` is ``(k >> u) & 1`` — exactly the ordering of
        :class:`~repro.quantum.statevector.Statevector` amplitudes, so this
        array doubles as the diagonal of the cost Hamiltonian.
        """
        if self._cut_table is None:
            indices = np.arange(2**self.num_qubits)
            table = np.zeros(indices.size, dtype=float)
            for u, v, weight in self._graph.edges:
                bit_u = (indices >> u) & 1
                bit_v = (indices >> v) & 1
                table += weight * (bit_u ^ bit_v)
            self._cut_table = table
        return self._cut_table

    def max_cut_value(self) -> float:
        """The exact optimum, found by enumeration."""
        return float(self.cut_values_table().max())

    def optimal_assignments(self) -> List[str]:
        """All optimal bit-strings (MSB first)."""
        table = self.cut_values_table()
        best = table.max()
        width = self.num_qubits
        return [
            format(index, f"0{width}b")
            for index in np.flatnonzero(np.isclose(table, best))
        ]

    def approximation_ratio(self, expectation: float) -> float:
        """Ratio of an achieved cost expectation to the exact optimum."""
        optimum = self.max_cut_value()
        return float(expectation) / optimum

    def random_cut_expectation(self) -> float:
        """Expected cut of a uniformly random assignment (= half total weight)."""
        return 0.5 * self._graph.total_weight()

    # ------------------------------------------------------------------
    # Quantum encodings
    # ------------------------------------------------------------------
    def cost_hamiltonian(self) -> PauliSum:
        """The cost Hamiltonian ``H_C`` as a Pauli sum."""
        n = self.num_qubits
        operator = PauliSum()
        identity = "I" * n
        for u, v, weight in self._graph.edges:
            operator.add_term(weight / 2.0, identity)
            label = list(identity)
            label[n - 1 - u] = "Z"
            label[n - 1 - v] = "Z"
            operator.add_term(-weight / 2.0, "".join(label))
        return operator.simplify()

    def cost_diagonal(self) -> np.ndarray:
        """Diagonal of ``H_C`` in the computational basis (== cut table)."""
        return self.cut_values_table().copy()

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"MaxCutProblem(graph={self._graph.name!r}, "
            f"nodes={self._graph.num_nodes}, edges={self._graph.num_edges})"
        )


def goemans_williamson_bound(problem: MaxCutProblem) -> float:
    """The classical 0.878-approximation reference value.

    Returned as ``0.878 * optimum``; useful as a horizontal reference line
    when plotting approximation ratios.
    """
    return 0.87856 * problem.max_cut_value()
