"""The frontend's intermediate representation.

A :class:`CircuitIR` is a flat, SSA-free gate list over one logical qubit
register.  Unlike :class:`~repro.quantum.circuit.QuantumCircuit` it may hold
gates outside the native :data:`~repro.quantum.gates.GATE_REGISTRY` (composite
gates awaiting decomposition, user macros) and it carries source-level
metadata: register layout, pending measurements, user-defined decomposition
rules, and the global phase accumulated by phase-dropping rewrites.

Gate parameters in the IR are either plain floats or :class:`AffineParam`
values — ``coeff * <named parameter> + const`` — mirroring the affine-only
symbolic algebra the rest of the stack supports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.exceptions import CircuitError
from repro.execution.keys import stable_hash


@dataclass(frozen=True)
class AffineParam:
    """A symbolic angle ``coeff * parameter + const`` (single parameter).

    The IR-level counterpart of
    :class:`~repro.quantum.parameter.ParameterExpression`; parameters are
    identified by name, not object identity, because the IR is built from
    source text.
    """

    name: str
    coeff: float = 1.0
    const: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise CircuitError("affine parameter needs a non-empty name")
        object.__setattr__(self, "coeff", float(self.coeff))
        object.__setattr__(self, "const", float(self.const))

    def scaled(self, factor: float) -> "AffineParam":
        """This angle multiplied by *factor*."""
        return AffineParam(self.name, self.coeff * factor, self.const * factor)

    def shifted(self, offset: float) -> "AffineParam":
        """This angle with *offset* added."""
        return AffineParam(self.name, self.coeff, self.const + offset)

    def __neg__(self) -> "AffineParam":
        return self.scaled(-1.0)

    def bind(self, value: float) -> float:
        """Evaluate at ``parameter = value``."""
        return self.coeff * float(value) + self.const


@dataclass(frozen=True)
class LinearExpr:
    """A linear combination over *several* named parameters, plus a constant.

    Only ever appears inside decomposition templates (gate-macro bodies may
    combine formals, e.g. ``(lambda+phi)/2`` in qelib1's ``cu3``); it must
    collapse to a float or a single-parameter :class:`AffineParam` when the
    template is expanded with concrete call arguments.  Term order is
    normalised (sorted by name) so structurally equal expressions compare
    equal.
    """

    terms: Tuple[AffineParam, ...]
    const: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "terms",
            tuple(
                sorted(
                    (AffineParam(t.name, t.coeff, 0.0) for t in self.terms),
                    key=lambda t: t.name,
                )
            ),
        )
        object.__setattr__(self, "const", float(self.const))


ParamValue = Union[float, AffineParam]

#: What decomposition templates may hold as a gate-parameter specification.
ParamSpec = Union[float, AffineParam, LinearExpr]


def lin_scale(value: ParamSpec, factor: float):
    """``value * factor`` over the float/affine/linear union."""
    factor = float(factor)
    if isinstance(value, AffineParam):
        return value.scaled(factor)
    if isinstance(value, LinearExpr):
        return LinearExpr(
            tuple(t.scaled(factor) for t in value.terms), value.const * factor
        )
    return float(value) * factor


def lin_add(left: ParamSpec, right: ParamSpec):
    """``left + right``, merging same-name terms and collapsing the result.

    Returns a plain float when no symbolic terms survive, an
    :class:`AffineParam` for exactly one, and a :class:`LinearExpr` otherwise.
    """
    coeffs: Dict[str, float] = {}
    const = 0.0
    for value in (left, right):
        if isinstance(value, AffineParam):
            coeffs[value.name] = coeffs.get(value.name, 0.0) + value.coeff
            const += value.const
        elif isinstance(value, LinearExpr):
            for term in value.terms:
                coeffs[term.name] = coeffs.get(term.name, 0.0) + term.coeff
            const += value.const
        else:
            const += float(value)
    coeffs = {name: coeff for name, coeff in coeffs.items() if coeff != 0.0}
    if not coeffs:
        return const
    if len(coeffs) == 1:
        ((name, coeff),) = coeffs.items()
        return AffineParam(name, coeff, const)
    return LinearExpr(
        tuple(AffineParam(name, coeff) for name, coeff in coeffs.items()), const
    )


def _encode_param(param: ParamValue, order: Dict[str, int]) -> object:
    if isinstance(param, AffineParam):
        index = order.setdefault(param.name, len(order))
        return {"param": index, "coeff": param.coeff, "const": param.const}
    return float(param)


@dataclass(frozen=True)
class IRGate:
    """One gate application in the IR.

    ``line`` is the 1-based source line of the originating statement (0 for
    synthesized gates) so decomposition errors can point back at the source.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[ParamValue, ...] = ()
    line: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(
            self,
            "params",
            tuple(
                p if isinstance(p, AffineParam) else float(p) for p in self.params
            ),
        )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(
                f"gate {self.name!r} applied to duplicate qubits {self.qubits}"
            )


class CircuitIR:
    """A parsed circuit: gate list + register metadata + global phase."""

    def __init__(
        self,
        num_qubits: int,
        *,
        name: str = "qasm",
        qregs: Optional[List[Tuple[str, int]]] = None,
        cregs: Optional[List[Tuple[str, int]]] = None,
    ):
        if num_qubits <= 0:
            raise CircuitError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        #: Declared quantum registers as ``(name, size)`` in declaration order;
        #: flat qubit indices assign register slots contiguously in this order.
        self.qregs: List[Tuple[str, int]] = list(qregs or [("q", num_qubits)])
        self.cregs: List[Tuple[str, int]] = list(cregs or [])
        self.gates: List[IRGate] = []
        #: ``(qubit, creg_name, bit_index)`` records of ``measure`` statements.
        #: The engine is statevector-based, so measurements are metadata only;
        #: emission ignores them (documented in docs/frontend.md).
        self.measurements: List[Tuple[int, str, int]] = []
        #: User ``gate`` macros by name (populated by the parser with
        #: :class:`~repro.frontend.passes.DecompositionRule` instances).
        self.macros: Dict[str, object] = {}
        # Global phase dropped by basis rewrites: the emitted circuit equals
        # the source times exp(i * (phase_const + sum coeff * param)).
        self.phase_const: float = 0.0
        self.phase_terms: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        qubits: Iterable[int],
        params: Iterable[ParamValue] = (),
        line: int = 0,
    ) -> "CircuitIR":
        """Append gate *name* on *qubits*, validating qubit indices."""
        gate = IRGate(name, tuple(qubits), tuple(params), line)
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit"
                )
        self.gates.append(gate)
        return self

    def add_phase(self, value: ParamSpec) -> None:
        """Accumulate a dropped global-phase contribution."""
        if isinstance(value, AffineParam):
            self.phase_const += value.const
            self.phase_terms[value.name] = (
                self.phase_terms.get(value.name, 0.0) + value.coeff
            )
        elif isinstance(value, LinearExpr):
            self.phase_const += value.const
            for term in value.terms:
                self.phase_terms[term.name] = (
                    self.phase_terms.get(term.name, 0.0) + term.coeff
                )
        else:
            self.phase_const += float(value)

    def copy_with_gates(self, gates: Iterable[IRGate]) -> "CircuitIR":
        """A structural copy holding *gates* (phase and metadata carried over)."""
        clone = CircuitIR(
            self.num_qubits,
            name=self.name,
            qregs=list(self.qregs),
            cregs=list(self.cregs),
        )
        clone.gates = list(gates)
        clone.measurements = list(self.measurements)
        clone.macros = dict(self.macros)
        clone.phase_const = self.phase_const
        clone.phase_terms = dict(self.phase_terms)
        return clone

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> List[str]:
        """Free parameter names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for gate in self.gates:
            for param in gate.params:
                if isinstance(param, AffineParam):
                    seen.setdefault(param.name, None)
        return list(seen)

    @property
    def num_parameters(self) -> int:
        """Number of distinct free parameters."""
        return len(self.parameters)

    def count_ops(self) -> Dict[str, int]:
        """Gate counts per gate name."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def global_phase(self, bindings: Optional[Dict[str, float]] = None) -> float:
        """The accumulated global-phase angle at the given parameter values."""
        phase = self.phase_const
        for name, coeff in self.phase_terms.items():
            if coeff == 0.0:
                continue
            if not bindings or name not in bindings:
                raise CircuitError(
                    f"global phase depends on unbound parameter {name!r}"
                )
            phase += coeff * float(bindings[name])
        return phase

    def qubit_index(self, reg: str, offset: int) -> int:
        """Flat qubit index of ``reg[offset]``."""
        base = 0
        for name, size in self.qregs:
            if name == reg:
                if not 0 <= offset < size:
                    raise CircuitError(
                        f"index {offset} out of range for qreg {reg}[{size}]"
                    )
                return base + offset
            base += size
        raise CircuitError(f"unknown quantum register {reg!r}")

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """A process-stable content hash of the circuit structure.

        Keyed on qubit count, the full gate stream (parameters by
        first-appearance index, so renamed parameters share a key), and the
        accumulated global phase.  Register names, measurements and macro
        definitions are deliberately excluded: they do not change the unitary
        the engine compiles.
        """
        order: Dict[str, int] = {}
        payload = {
            "num_qubits": self.num_qubits,
            "gates": [
                [
                    gate.name,
                    list(gate.qubits),
                    [_encode_param(p, order) for p in gate.params],
                ]
                for gate in self.gates
            ],
            "phase": [
                self.phase_const,
                sorted(
                    (order.setdefault(name, len(order)), coeff)
                    for name, coeff in self.phase_terms.items()
                    if coeff != 0.0
                ),
            ],
        }
        return stable_hash(payload)

    def __len__(self) -> int:
        return len(self.gates)

    def __repr__(self) -> str:
        return (
            f"CircuitIR(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"size={len(self.gates)}, parameters={self.num_parameters})"
        )
