"""Benchmark: regenerate Fig. 6 — prediction-error distributions per target depth."""

from repro.experiments.figure6 import run_figure6


def test_bench_figure6(benchmark, bench_config, bench_context, bench_smoke):
    result = benchmark.pedantic(
        lambda: run_figure6(bench_config, bench_context), rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    errors = {row["target_depth"]: row["mean_abs_percent_error"] for row in result.table}
    depths = sorted(errors)
    # Paper shape: prediction error grows with the target depth
    # (5.7% -> 10.2% in the paper); allow slack for the reduced ensemble.
    # The trend is statistical — at --bench-smoke scale (a handful of test
    # graphs) it is not reliable, so smoke mode only checks sanity bounds.
    if not bench_smoke:
        assert errors[depths[-1]] >= errors[depths[0]] * 0.8
    # Predictions must be far better than chance: the paper reports ~6-10%,
    # the reduced-scale reproduction should stay well under 60%.
    for depth in depths:
        assert 0.0 <= errors[depth] < 60.0
    for report in result.reports:
        assert report.num_graphs > 0
