"""Exact density-matrix simulation: the channel oracle.

The trajectory subsystem of :mod:`repro.quantum.noise` simulates noise by
*sampling*: averages converge to the channel result, but only at Monte-Carlo
rate, so channel bugs below the statistical floor are invisible and non-Pauli
channels (true amplitude damping) are unrepresentable.  This module closes
both gaps with a small exact backend:

* :class:`DensityMatrix` — an ``n``-qubit mixed state ``rho`` stored as the
  dense ``2^n x 2^n`` matrix, with in-place unitary conjugation
  ``rho -> U rho U^dag`` and exact Kraus-map application
  ``rho -> sum_k K_k rho K_k^dag``.
* :class:`DensityMatrixSimulator` — runs the **same**
  :class:`~repro.quantum.circuit.QuantumCircuit` objects as the statevector
  path.  Noiseless circuits are evolved through the compiled kernel engine
  (:class:`~repro.quantum.engine.CompiledProgram`) applied to *both sides*
  of ``rho`` — two batch-major sweeps, one per side — so the density path
  reuses the fused diagonal segments and GEMM blocks instead of a per-gate
  dense dispatch.  With a :class:`~repro.quantum.noise.NoiseModel`, every
  instruction's matching channels are applied **exactly** (via their Kraus
  operators) at the same per-instruction anchors the trajectory sampler
  draws its errors for, making the simulator the deterministic oracle that
  trajectory averages must converge to.

The register is capped at ``max_qubits`` (default 12): the density matrix
costs ``4^n`` complex entries (256 MiB at n = 12), which is exactly the
regime this backend exists for — validating channels and small noisy
ablations, not production sweeps.

Examples
--------
A noiseless run reproduces the pure state exactly:

>>> import numpy as np
>>> from repro.quantum import QuantumCircuit
>>> from repro.quantum.density import DensityMatrixSimulator
>>> bell = QuantumCircuit(2)
>>> _ = bell.h(0)
>>> _ = bell.cx(0, 1)
>>> rho = DensityMatrixSimulator().run(bell)
>>> [round(float(p), 3) for p in rho.probabilities()]
[0.5, 0.0, 0.0, 0.5]
>>> round(rho.purity(), 12)
1.0

A depolarizing channel degrades the purity deterministically — no sampling,
no seed:

>>> from repro.quantum.noise import DepolarizingChannel, NoiseModel
>>> model = NoiseModel().add_channel(DepolarizingChannel(0.2), gates=("cx",))
>>> noisy = DensityMatrixSimulator().run(bell, noise_model=model)
>>> noisy.purity() < 1.0
True
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.engine import NoisyCompiledProgram, compile_noisy_circuit
from repro.quantum.noise import NoiseModel, QuantumChannel
from repro.quantum.operators import PauliSum
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.statevector import Statevector
from repro.utils.validation import check_qubit_index

#: Default register ceiling of the density backend (``4^n`` memory).
DEFAULT_MAX_QUBITS = 12

InitialState = Union["DensityMatrix", Statevector, None]


def _apply_left(
    array: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Left-multiply a ``2^k`` operator onto the row index of ``(dim, dim)``.

    The same moveaxis/GEMM contraction as
    :meth:`~repro.quantum.statevector.Statevector.apply_matrix`, with the
    column index of the density matrix riding along as a flattened batch
    axis.  Returns a fresh contiguous array.
    """
    k = len(qubits)
    axes = [num_qubits - 1 - q for q in qubits]
    tensor = array.reshape((2,) * num_qubits + (-1,))
    tensor = np.moveaxis(tensor, axes, range(k))
    shape = tensor.shape
    flat = matrix @ tensor.reshape(2**k, -1)
    tensor = np.moveaxis(flat.reshape(shape), range(k), axes)
    return np.ascontiguousarray(tensor).reshape(array.shape)


class DensityMatrix:
    """An ``n``-qubit mixed state with exact unitary and Kraus application.

    The matrix element ``rho[i, j]`` is ``<i| rho |j>`` in the computational
    basis, with qubit 0 the least-significant bit of the basis index — the
    same convention as :class:`~repro.quantum.statevector.Statevector`.
    """

    __slots__ = ("_data", "_num_qubits")

    def __init__(self, data, *, copy: bool = True, validate: bool = True):
        array = np.array(data, dtype=complex, copy=copy)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise SimulationError(
                f"density matrix must be square, got shape {array.shape}"
            )
        size = array.shape[0]
        num_qubits = size.bit_length() - 1
        if size == 0 or 2**num_qubits != size:
            raise SimulationError(
                f"density-matrix dimension must be a power of two, got {size}"
            )
        if validate:
            if not np.allclose(array, array.conj().T, atol=1e-8):
                raise SimulationError("density matrix is not Hermitian")
            if not np.isclose(float(np.trace(array).real), 1.0, atol=1e-8):
                raise SimulationError("density matrix does not have unit trace")
        self._data = array
        self._num_qubits = num_qubits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        """The pure state ``|0...0><0...0|``."""
        if num_qubits <= 0:
            raise SimulationError(f"num_qubits must be positive, got {num_qubits}")
        data = np.zeros((2**num_qubits, 2**num_qubits), dtype=complex)
        data[0, 0] = 1.0
        return cls(data, copy=False, validate=False)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        """The pure-state projector ``|psi><psi|``."""
        return cls(np.outer(state.data, state.data.conj()), copy=False, validate=False)

    @classmethod
    def from_label(cls, label: str) -> "DensityMatrix":
        """A computational basis projector from a bit-string label (MSB first)."""
        return cls.from_statevector(Statevector.from_label(label))

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        """The maximally mixed state ``I / 2^n``."""
        if num_qubits <= 0:
            raise SimulationError(f"num_qubits must be positive, got {num_qubits}")
        dim = 2**num_qubits
        return cls(np.eye(dim, dtype=complex) / dim, copy=False, validate=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension (``2**num_qubits``)."""
        return self._data.shape[0]

    @property
    def data(self) -> np.ndarray:
        """The raw ``(dim, dim)`` matrix (a view; do not mutate)."""
        return self._data

    def copy(self) -> "DensityMatrix":
        """An independent copy of the state."""
        return DensityMatrix(self._data, copy=True, validate=False)

    def trace(self) -> float:
        """``Tr(rho)`` (1 for a physical state; preserved by every channel)."""
        return float(np.trace(self._data).real)

    def purity(self) -> float:
        """``Tr(rho^2)``: 1 for pure states, ``1 / 2^n`` when maximally mixed."""
        # Tr(rho^2) = sum |rho_ij|^2 for Hermitian rho — no matmul needed.
        return float(np.sum(self._data.real**2 + self._data.imag**2))

    def is_hermitian(self, atol: float = 1e-9) -> bool:
        """Whether the matrix equals its conjugate transpose within *atol*."""
        return bool(np.allclose(self._data, self._data.conj().T, atol=atol))

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        """Conjugate: ``rho -> U rho U^dag`` on the listed qubits, in place.

        The first entry of *qubits* is the most-significant bit of the
        operator's sub-space basis (matching :mod:`repro.quantum.gates`).
        Returns ``self`` for chaining.
        """
        matrix = self._check_operator(matrix, qubits)
        left = _apply_left(self._data, matrix, qubits, self._num_qubits)
        # (U (U rho)^dag)^dag = (U rho) U^dag — both sides through the same
        # left-contraction kernel.
        self._data = _apply_left(
            left.conj().T, matrix, qubits, self._num_qubits
        ).conj().T
        return self

    def apply_kraus(
        self, operators: Sequence[np.ndarray], qubits: Sequence[int]
    ) -> "DensityMatrix":
        """Exact channel application ``rho -> sum_k K_k rho K_k^dag``, in place."""
        if not len(operators):
            raise SimulationError("apply_kraus needs at least one operator")
        total = None
        for operator in operators:
            operator = self._check_operator(operator, qubits)
            left = _apply_left(self._data, operator, qubits, self._num_qubits)
            term = _apply_left(
                left.conj().T, operator, qubits, self._num_qubits
            ).conj().T
            total = term if total is None else total + term
        self._data = total
        return self

    def apply_channel(self, channel: QuantumChannel, qubits) -> "DensityMatrix":
        """Apply a :class:`~repro.quantum.noise.QuantumChannel` to *qubits*.

        *qubits* is a single qubit index or a sequence matching the
        channel's :attr:`~repro.quantum.noise.QuantumChannel.num_qubits`
        (first entry = most-significant bit of the channel basis).
        """
        if isinstance(qubits, (int, np.integer)):
            qubits = (int(qubits),)
        return self.apply_kraus(channel.kraus_operators(), tuple(qubits))

    def _check_operator(self, matrix: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        qubits = list(qubits)
        k = len(qubits)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2**k, 2**k):
            raise SimulationError(
                f"operator shape {matrix.shape} does not match {k} qubit(s)"
            )
        if len(set(qubits)) != k:
            raise SimulationError(f"duplicate qubits in {qubits}")
        for qubit in qubits:
            check_qubit_index(qubit, self._num_qubits)
        return matrix

    # ------------------------------------------------------------------
    # Measurement statistics
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Measurement probabilities: the (clipped) real diagonal of ``rho``."""
        return np.clip(np.diagonal(self._data).real, 0.0, None)

    def probability(self, bitstring: str) -> float:
        """Probability of observing the given bit-string (MSB first)."""
        if len(bitstring) != self._num_qubits or any(ch not in "01" for ch in bitstring):
            raise SimulationError(
                f"bitstring must have {self._num_qubits} binary digits, "
                f"got {bitstring!r}"
            )
        return float(self.probabilities()[int(bitstring, 2)])

    def expectation_diagonal(self, diagonal: np.ndarray) -> float:
        """Expectation value of a real diagonal observable."""
        diagonal = np.asarray(diagonal, dtype=float).reshape(-1)
        if diagonal.size != self.dim:
            raise SimulationError(
                f"diagonal length {diagonal.size} does not match dimension {self.dim}"
            )
        return float(np.dot(self.probabilities(), diagonal))

    def expectation(self, observable: PauliSum) -> float:
        """``Tr(rho H)`` for a :class:`~repro.quantum.operators.PauliSum`."""
        if observable.num_qubits != self._num_qubits:
            raise SimulationError(
                f"observable acts on {observable.num_qubits} qubits, "
                f"the state has {self._num_qubits}"
            )
        if observable.is_diagonal:
            return self.expectation_diagonal(observable.z_diagonal_view())
        # Tr(rho H) with Hermitian rho and H: sum of the elementwise product
        # of rho^T and H, which avoids the full matmul.
        return float(np.sum(self._data.T * observable.to_matrix()).real)

    def fidelity_with_statevector(self, state: Statevector) -> float:
        """``<psi| rho |psi>`` — overlap with a pure reference state."""
        if state.num_qubits != self._num_qubits:
            raise SimulationError("fidelity requires equal register sizes")
        return float(np.real(np.vdot(state.data, self._data @ state.data)))

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"DensityMatrix(num_qubits={self._num_qubits})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DensityMatrix):
            return NotImplemented
        return self._num_qubits == other._num_qubits and np.allclose(
            self._data, other._data
        )

    def __hash__(self) -> None:  # pragma: no cover - mutable object
        raise TypeError("DensityMatrix is mutable and unhashable")


class DensityMatrixSimulator:
    """Exact mixed-state simulator: the oracle for every noise channel.

    Runs the same circuits and :class:`~repro.quantum.noise.NoiseModel`
    objects as :class:`~repro.quantum.simulator.StatevectorSimulator`, but
    deterministically: channels are applied as exact Kraus maps instead of
    sampled Pauli trajectories, so there is no ``rng`` anywhere in this
    class.

    Parameters
    ----------
    max_qubits:
        Register ceiling (default :data:`DEFAULT_MAX_QUBITS`); the density
        matrix costs ``4^n`` complex entries.
    compiled:
        When True (default), **noiseless** circuits evolve through the
        compiled kernel engine applied to both sides of ``rho`` (two
        batch-major sweeps, sharing the statevector simulator's program
        cache), and **noisy** circuits through the PTM/superoperator tier:
        the ``(circuit, noise model)`` pair is lowered once to kernels on
        the flattened ``vec(rho)`` (see
        :class:`~repro.quantum.engine.NoisyCompiledProgram`), cached in a
        version-keyed LRU, and re-bound by parameter values.  When False,
        every gate is conjugated through the dense per-gate dispatch with
        each channel's Kraus map applied at its per-instruction anchor —
        the slow, transparent oracle the compiled path is validated
        against.
    """

    _NOISY_CACHE_CAPACITY = 16

    def __init__(self, max_qubits: int = DEFAULT_MAX_QUBITS, compiled: bool = True):
        if max_qubits <= 0:
            raise SimulationError(f"max_qubits must be positive, got {max_qubits}")
        self._max_qubits = int(max_qubits)
        self._compiled = bool(compiled)
        # Compilation (and its LRU cache keyed on circuit identity+version)
        # is delegated to a statevector engine instance.
        self._engine = StatevectorSimulator(max_qubits=max_qubits)
        # PTM-compiled noisy programs, LRU-keyed on the identity of *both*
        # the circuit and the noise model, revalidated against both version
        # counters (a mutated model can never serve a stale kernel).
        self._noisy_programs: OrderedDict = OrderedDict()
        self._noisy_lock = threading.RLock()
        self._executed_circuits = 0

    @property
    def max_qubits(self) -> int:
        """The largest register this simulator instance will accept."""
        return self._max_qubits

    @property
    def compiled(self) -> bool:
        """Whether noiseless runs use the compiled kernel engine."""
        return self._compiled

    @property
    def executed_circuits(self) -> int:
        """Number of circuit executions performed so far (monotone counter)."""
        return self._executed_circuits

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        parameter_values=None,
        initial_state: InitialState = None,
        *,
        noise_model: Optional[NoiseModel] = None,
    ) -> DensityMatrix:
        """Execute *circuit* exactly and return the final density matrix.

        Parameters
        ----------
        circuit:
            The circuit to execute (parametric circuits need
            *parameter_values*, as for the statevector simulator).
        parameter_values:
            A ``{Parameter: value}`` mapping or flat value sequence in
            :attr:`QuantumCircuit.parameters` order.
        initial_state:
            A :class:`DensityMatrix`, a pure
            :class:`~repro.quantum.statevector.Statevector` (promoted to its
            projector), or ``None`` for ``|0...0><0...0|``.
        noise_model:
            Optional :class:`~repro.quantum.noise.NoiseModel`; every
            matching channel is applied **exactly** (Kraus map) after the
            instruction it is attached to — the per-instruction placement of
            the generic trajectory path, with no sampling involved.  Any
            :class:`~repro.quantum.noise.QuantumChannel` works here,
            including non-Pauli ones.
        """
        self._check_register(circuit)
        if noise_model is not None and noise_model.is_empty:
            noise_model = None
        state = self._initial_matrix(circuit, initial_state)
        if noise_model is None and self._compiled:
            result = self._run_compiled(circuit, parameter_values, state)
        elif self._compiled:
            result = self._run_compiled_noisy(
                circuit, parameter_values, state, noise_model
            )
        else:
            result = self._run_generic(circuit, parameter_values, state, noise_model)
        self._executed_circuits += 1
        return result

    # ------------------------------------------------------------------
    # PTM compilation cache
    # ------------------------------------------------------------------
    def compile_noisy(
        self, circuit: QuantumCircuit, noise_model: NoiseModel
    ) -> NoisyCompiledProgram:
        """The PTM-compiled program of a ``(circuit, noise model)`` pair.

        Cached in a small LRU keyed on the identity of both objects and
        revalidated against :attr:`QuantumCircuit.version` *and*
        :attr:`NoiseModel.version` — mutating either (appending a gate,
        adding a channel) compiles a fresh program instead of serving the
        stale kernel.  Thread-safe; entries are evicted when either source
        object is garbage collected.
        """
        key = (id(circuit), id(noise_model))
        versions = (circuit.version, noise_model.version)
        with self._noisy_lock:
            entry = self._noisy_programs.get(key)
            if entry is not None:
                circuit_ref, model_ref, cached_versions, program = entry
                if (
                    circuit_ref() is circuit
                    and model_ref() is noise_model
                    and cached_versions == versions
                ):
                    self._noisy_programs.move_to_end(key)
                    return program
                del self._noisy_programs[key]
        program = compile_noisy_circuit(circuit, noise_model)

        def _evict(_ref, cache=self._noisy_programs, key=key, lock=self._noisy_lock):
            with lock:
                cache.pop(key, None)

        with self._noisy_lock:
            self._noisy_programs[key] = (
                weakref.ref(circuit, _evict),
                weakref.ref(noise_model, _evict),
                versions,
                program,
            )
            while len(self._noisy_programs) > self._NOISY_CACHE_CAPACITY:
                self._noisy_programs.popitem(last=False)
        return program

    def _run_compiled_noisy(
        self,
        circuit: QuantumCircuit,
        parameter_values,
        state: np.ndarray,
        noise_model: NoiseModel,
    ) -> DensityMatrix:
        """Noisy fast path: one superoperator-kernel sweep over vec(rho)."""
        program = self.compile_noisy(circuit, noise_model)
        if program.num_parameters > 0 and parameter_values is None:
            raise SimulationError(
                "circuit has unbound parameters and no parameter_values given"
            )
        values = program.resolve_bindings(parameter_values)
        vec = np.ascontiguousarray(state.reshape(-1))
        vec = program.apply(vec, values)
        return DensityMatrix(
            vec.reshape(state.shape), copy=False, validate=False
        )

    def _run_compiled(
        self, circuit: QuantumCircuit, parameter_values, state: np.ndarray
    ) -> DensityMatrix:
        """Noiseless fast path: the compiled program on both sides of rho."""
        program = self._engine.compile(circuit)
        if program.num_parameters > 0 and parameter_values is None:
            raise SimulationError(
                "circuit has unbound parameters and no parameter_values given"
            )
        values = program.resolve_bindings(parameter_values)
        # Rows of rho^T are the columns of rho, so one batch-major sweep
        # computes (U rho)^T; conjugating and sweeping again applies U to
        # the other side: conj((U conj(U rho)) ...) == U rho U^dag.
        left = program.apply(np.ascontiguousarray(state.T), values)
        right = program.apply(np.ascontiguousarray(left.T.conj()), values)
        return DensityMatrix(np.conj(right), copy=False, validate=False)

    def _run_generic(
        self,
        circuit: QuantumCircuit,
        parameter_values,
        state: np.ndarray,
        noise_model: Optional[NoiseModel],
    ) -> DensityMatrix:
        """Per-instruction path: dense conjugation + exact channel anchors."""
        if circuit.num_parameters > 0:
            if parameter_values is None:
                raise SimulationError(
                    "circuit has unbound parameters and no parameter_values given"
                )
            circuit = circuit.bind(parameter_values)
        rho = DensityMatrix(state, copy=False, validate=False)
        for instruction in circuit:
            rho.apply_unitary(instruction.matrix(), instruction.qubits)
            if noise_model is not None:
                for channel, qubits in noise_model.exact_channels_for(
                    instruction.name, instruction.qubits
                ):
                    rho.apply_kraus(channel.kraus_operators(), qubits)
        return rho

    def expectation(
        self,
        circuit: QuantumCircuit,
        observable: PauliSum,
        parameter_values=None,
        *,
        noise_model: Optional[NoiseModel] = None,
    ) -> float:
        """The exact (noisy) expectation ``Tr(rho(theta) H)``."""
        if observable.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"observable acts on {observable.num_qubits} qubits, "
                f"circuit has {circuit.num_qubits}"
            )
        return self.run(
            circuit, parameter_values, noise_model=noise_model
        ).expectation(observable)

    def probabilities(
        self,
        circuit: QuantumCircuit,
        parameter_values=None,
        *,
        noise_model: Optional[NoiseModel] = None,
    ) -> np.ndarray:
        """Exact outcome distribution of the (noisy) final state."""
        return self.run(
            circuit, parameter_values, noise_model=noise_model
        ).probabilities()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_register(self, circuit: QuantumCircuit) -> None:
        if circuit.num_qubits > self._max_qubits:
            raise SimulationError(
                f"circuit has {circuit.num_qubits} qubits, exceeding the "
                f"density-matrix limit of {self._max_qubits}"
            )

    def _initial_matrix(
        self, circuit: QuantumCircuit, initial_state: InitialState
    ) -> np.ndarray:
        dim = 2**circuit.num_qubits
        if initial_state is None:
            state = np.zeros((dim, dim), dtype=np.complex128)
            state[0, 0] = 1.0
            return state
        if isinstance(initial_state, Statevector):
            initial_state = DensityMatrix.from_statevector(initial_state)
        if initial_state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                "initial state size does not match the circuit register"
            )
        return np.array(initial_state.data, dtype=np.complex128, copy=True)
