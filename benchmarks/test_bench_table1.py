"""Benchmark: regenerate Table I — naive vs two-level run-time comparison.

This is the paper's headline result: the ML-initialized two-level flow
reaches the same (or better) approximation ratio with substantially fewer
optimization-loop iterations, and the saving grows with the target depth.
"""

from repro.experiments.table1 import run_table1


def test_bench_table1(benchmark, bench_config, bench_context, bench_smoke):
    result = benchmark.pedantic(
        lambda: run_table1(bench_config, bench_context), rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    depths = sorted(bench_config.target_depths)
    for optimizer in bench_config.evaluation_optimizers:
        deepest = result.summary_for(optimizer, depths[-1])
        shallowest = result.summary_for(optimizer, depths[0])
        # Two-level never degrades the approximation ratio materially.
        assert deepest.two_level_mean_ar >= deepest.naive_mean_ar - 0.05
        # The FC-reduction trend is statistical: with the --bench-smoke
        # handful of test graphs a single slow warm-started run flips the
        # sign, so smoke mode checks only that the pipeline produces finite
        # summaries and leaves the paper-shape claims to the full harness.
        if bench_smoke:
            continue
        # The FC reduction at the largest depth is positive and larger than
        # at the smallest depth (the paper's "more pronounced at higher
        # target depth" observation).
        assert deepest.mean_fc_reduction_percent > 0.0
        assert (
            deepest.mean_fc_reduction_percent
            >= shallowest.mean_fc_reduction_percent - 10.0
        )
    # The overall average reduction is meaningfully positive (paper: 44.9%).
    if not bench_smoke:
        assert result.average_fc_reduction > 10.0
    assert result.max_fc_reduction <= 100.0
