"""The asynchronous solver service: submit solves, get future-like handles.

:class:`SolverService` turns the library's synchronous
:class:`~repro.qaoa.solver.QAOASolver` into a long-lived, concurrent
solve endpoint:

* **Async job API** — :meth:`~SolverService.submit` returns a
  :class:`~repro.service.jobs.JobHandle` immediately; a bounded pool of
  worker threads drains the queue.  Handles support ``result(timeout=)``,
  ``status`` and cooperative ``cancel()``.
* **Request coalescing** — identical concurrent submissions (same graph
  content, depth, context, seed and options) share one computation: the
  first becomes the *primary* job, the rest attach to it and are fulfilled
  from its result.  Scalar expectation requests
  (:meth:`~SolverService.submit_expectation`) are batched per compile key
  through a :class:`~repro.service.coalescer.RequestCoalescer` into single
  vectorized ``expectation_batch`` sweeps.
* **Two-level caching** — compiled backend programs are shared across
  workers via a :class:`~repro.service.cache.ProgramCache`; finished
  *deterministic* solves (explicit integer seed) land in a
  :class:`~repro.service.cache.ResultCache`, so a warm resubmission
  completes without touching the queue.
* **Circuit jobs** — :meth:`~SolverService.submit_circuit` runs imported
  frontend workloads (OpenQASM text, a
  :class:`~repro.frontend.ir.CircuitIR`, or an emitted
  :class:`~repro.quantum.circuit.QuantumCircuit`) against an arbitrary
  :class:`~repro.quantum.operators.PauliSum` through the same queue,
  caches, deduplication and breaker machinery as solves; the prepared
  evaluator is shared across submissions through the program cache, keyed
  on circuit *content*.
* **Observability** — every component reports into one
  :class:`~repro.service.metrics.ServiceMetrics`
  (``service.metrics.to_dict()``).

Reliability semantics (see ``docs/reliability.md`` for the full story):

* **Per-job timeout** is cooperative (worker threads cannot be killed): a
  job that expires while still queued fails with
  :class:`~repro.exceptions.JobTimeoutError` without running; a job whose
  solve finishes after its deadline fails post-hoc.
* **Transient failures** (:class:`~repro.exceptions.TransientServiceError`)
  are retried up to ``max_retries`` times under a
  :class:`~repro.resilience.retry.RetryPolicy` (capped exponential backoff
  with decorrelated jitter; the deprecated ``retry_backoff=`` knob maps
  onto the policy bit-compatibly for the first attempt).
* **Circuit breaking** — an optional
  :class:`~repro.resilience.breaker.CircuitBreaker` sheds jobs fast with
  :class:`~repro.exceptions.CircuitOpenError` while the backend is
  persistently failing, instead of burning the retry schedule per job.
* **Checkpoint/resume** — with a configured ``checkpoint_store``,
  ``submit(..., checkpoint=True)`` snapshots optimizer state at restart
  boundaries; a retried (or resubmitted) job resumes from the last
  completed restart and still returns a bit-identical result.
* **Persistent results** — ``persistent_cache_dir=`` adds a crash-safe
  on-disk tier under the in-memory result cache (atomic writes, per-entry
  checksums, corrupted entries quarantined and treated as a miss), so a
  restarted process keeps its warm results.
* **Graceful shutdown** — :meth:`~SolverService.shutdown` stops intake and
  either drains the queue (default) or cancels everything still pending.

Examples
--------
>>> from repro.graphs import MaxCutProblem, erdos_renyi_graph
>>> from repro.service import SolverService
>>> problem = MaxCutProblem(erdos_renyi_graph(6, 0.5, seed=3))
>>> with SolverService(max_workers=2) as service:
...     handle = service.submit(problem, depth=1, seed=7)
...     result = handle.result(timeout=60)
>>> result.approximation_ratio > 0.7
True
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    JobTimeoutError,
    ServiceError,
    TransientServiceError,
)
from repro.execution.context import ContextLike, as_execution_context
from repro.execution.keys import (
    canonical_payload,
    circuit_cache_key,
    observable_cache_key,
    stable_hash,
)
from repro.graphs.maxcut import MaxCutProblem
from repro.qaoa.cost import ExpectationEvaluator
from repro.qaoa.solver import QAOASolver
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.checkpoint import CheckpointSlot, CheckpointStore
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.service.cache import ProgramCache, ResultCache
from repro.service.coalescer import BatchFuture, RequestCoalescer
from repro.service.jobs import JobHandle
from repro.service.metrics import ServiceMetrics
from repro.service.persistence import PersistentResultCache

__all__ = ["SolverService"]

_SHUTDOWN = object()


class _Job:
    """Internal queue item: a handle plus everything needed to run it."""

    __slots__ = ("handle", "work", "deadline", "cacheable", "backend", "attached")

    def __init__(
        self,
        handle: JobHandle,
        work: Callable[[], Any],
        deadline: Optional[float],
        cacheable: bool,
        backend: Optional[str] = None,
    ):
        self.handle = handle
        self.work = work
        self.deadline = deadline
        self.cacheable = cacheable
        #: Execution backend the job runs on (selects its circuit breaker).
        self.backend = backend
        #: Handles of deduplicated submissions fulfilled from this job.
        self.attached: List[JobHandle] = []


class SolverService:
    """A bounded-concurrency, caching, coalescing QAOA solve service.

    Parameters
    ----------
    context:
        The :class:`~repro.execution.context.ExecutionContext` every solve
        runs under (default: exact fast backend).
    max_workers:
        Worker-thread pool size.
    max_queue:
        Upper bound on queued (not yet running) jobs; ``None`` = unbounded.
        A full queue makes :meth:`submit` raise :class:`ServiceError`.
    default_timeout:
        Per-job timeout in seconds applied when ``submit`` gets none.
    max_retries:
        How many times a :class:`~repro.exceptions.TransientServiceError`
        is retried.
    retry_policy:
        The :class:`~repro.resilience.retry.RetryPolicy` spacing those
        retries (default: capped exponential backoff with decorrelated
        jitter from a 0.05 s base).
    retry_backoff:
        **Deprecated** alias: ``retry_backoff=x`` builds
        ``RetryPolicy.from_legacy_backoff(x)``, whose first delay equals the
        old linear schedule's first delay exactly.  Mutually exclusive with
        *retry_policy*.
    breaker:
        Optional :class:`~repro.resilience.breaker.CircuitBreaker` guarding
        the service's configured backend; open-state submissions fail fast
        with :class:`~repro.exceptions.CircuitOpenError`.  Its state
        transitions are reported into the service metrics.
    breakers:
        Optional mapping of backend name to
        :class:`~repro.resilience.breaker.CircuitBreaker` for services
        running jobs on several backends (e.g. solves on ``"fast"`` and
        circuit jobs on ``"circuit"``).  Each job is gated by the breaker
        registered under its own backend, so one failing backend sheds its
        jobs without tripping the others.  Composable with *breaker* as
        long as the keys don't collide; metrics report per-backend
        transitions and rejections alongside the aggregate counters.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector`; installs
        the ``worker.run`` site around job attempts, the
        ``backend.evaluate`` site inside the solver loop, and the
        ``cache.read`` / ``cache.write`` sites on the persistent cache.
    checkpoint_store:
        Optional :class:`~repro.resilience.checkpoint.CheckpointStore`
        enabling ``submit(..., checkpoint=True)``.
    persistent_cache_dir:
        Optional directory for the crash-safe on-disk result-cache tier.
    persistent_max_entries / persistent_ttl_seconds:
        Eviction policy of the on-disk tier (capacity bound swept after
        every write / per-entry time-to-live); ``None`` disables each.
    program_cache_size / result_cache_size:
        Capacities of the two cache levels.
    coalesce_max_batch / coalesce_max_wait_ms:
        Flush thresholds of the expectation coalescer.
    clock:
        Injectable monotonic time source (drives metrics and timeouts).
    **solver_options:
        Forwarded to :class:`~repro.qaoa.solver.QAOASolver` (``optimizer``,
        ``num_restarts``, ``tolerance``, ``max_iterations``, ``use_bounds``,
        ``candidate_pool``).
    """

    def __init__(
        self,
        context: ContextLike = None,
        *,
        max_workers: int = 4,
        max_queue: Optional[int] = None,
        default_timeout: Optional[float] = None,
        max_retries: int = 1,
        retry_backoff: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        breakers: Optional[Dict[str, CircuitBreaker]] = None,
        fault_injector: Optional[FaultInjector] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        persistent_cache_dir: Optional[Any] = None,
        persistent_max_entries: Optional[int] = None,
        persistent_ttl_seconds: Optional[float] = None,
        program_cache_size: int = 64,
        result_cache_size: int = 256,
        coalesce_max_batch: int = 64,
        coalesce_max_wait_ms: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        seed: Optional[int] = None,
        **solver_options: Any,
    ):
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        if max_queue is not None and max_queue < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {max_queue}")
        if retry_policy is not None and retry_backoff is not None:
            raise ConfigurationError(
                "pass either retry_policy or the deprecated retry_backoff, not both"
            )
        self._context = as_execution_context(context)
        self._clock = clock
        self._default_timeout = default_timeout
        self._max_retries = int(max_retries)
        if retry_policy is None:
            retry_policy = RetryPolicy.from_legacy_backoff(
                0.05 if retry_backoff is None else float(retry_backoff)
            )
        self._retry_policy = retry_policy
        self.metrics = ServiceMetrics(clock=clock)
        # Breaker registry keyed by backend name.  The scalar ``breaker=``
        # guards the service's configured backend; ``breakers=`` registers
        # one gate per backend, so a failing circuit engine sheds circuit
        # jobs without also shedding fast-backend solves.
        self._breakers: Dict[str, CircuitBreaker] = {}
        if breaker is not None:
            self._register_breaker(self._context.backend, breaker)
        for backend_name, backend_breaker in (breakers or {}).items():
            if backend_name in self._breakers:
                raise ConfigurationError(
                    f"two circuit breakers registered for backend {backend_name!r}"
                )
            self._register_breaker(backend_name, backend_breaker)
        self._fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.attach_metrics(self.metrics)
        self._checkpoint_store = checkpoint_store
        self.programs = ProgramCache(program_cache_size, metrics=self.metrics)
        persistent = None
        if persistent_cache_dir is not None:
            persistent = PersistentResultCache(
                persistent_cache_dir,
                metrics=self.metrics,
                fault_injector=fault_injector,
                max_entries=persistent_max_entries,
                ttl_seconds=persistent_ttl_seconds,
            )
        self.results = ResultCache(
            result_cache_size, metrics=self.metrics, persistent=persistent
        )
        self._coalescer = RequestCoalescer(
            max_batch=coalesce_max_batch,
            max_wait_ms=coalesce_max_wait_ms,
            metrics=self.metrics,
            clock=clock,
        )
        # One shared solver: its compiled-program LRU and the service-level
        # ProgramCache both key on content, and solve() is thread-safe when
        # every job carries its own integer seed (which the service
        # guarantees below).
        self._solver_options = dict(solver_options)
        self._solver = QAOASolver(
            context=self._context, fault_injector=fault_injector, **solver_options
        )
        # The options part of the solve-result key: everything that changes
        # what solve() computes besides (problem, depth, context, seed).
        self._options_signature = canonical_payload(
            {
                "optimizer": self._solver.optimizer.name,
                "tolerance": self._solver.optimizer.tolerance,
                "max_iterations": self._solver.optimizer.max_iterations,
                "num_restarts": self._solver_options.get("num_restarts", 1),
                "use_bounds": bool(self._solver_options.get("use_bounds", False)),
                "candidate_pool": self._solver_options.get("candidate_pool"),
            }
        )
        # Per-job seed derivation for unseeded submissions: independent
        # streams per job, no shared-generator contention across workers.
        self._seed_sequence = np.random.SeedSequence(seed)
        self._seed_lock = threading.Lock()
        # Job intake and the in-flight index for submission deduplication.
        self._queue: "queue.Queue" = queue.Queue()
        self._max_queue = max_queue
        self._queued_jobs = 0
        self._inflight: Dict[str, _Job] = {}
        self._state_lock = threading.Lock()
        self._accepting = True
        self._workers: List[threading.Thread] = []
        for index in range(int(max_workers)):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-service-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        self._coalescer.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def context(self):
        """The execution context every solve runs under."""
        return self._context

    @property
    def max_workers(self) -> int:
        return len(self._workers)

    @property
    def queue_depth(self) -> int:
        """Number of jobs queued and not yet picked up by a worker."""
        with self._state_lock:
            return self._queued_jobs

    def _derive_seed(self) -> int:
        with self._seed_lock:
            child = self._seed_sequence.spawn(1)[0]
        return int(child.generate_state(1, dtype="uint64")[0] % (2**63))

    # ------------------------------------------------------------------
    # Circuit breakers
    # ------------------------------------------------------------------
    def _register_breaker(self, backend: str, breaker: CircuitBreaker) -> None:
        self._breakers[backend] = breaker

        def listener(old_state: str, new_state: str, _backend: str = backend) -> None:
            self.metrics.breaker_transition(old_state, new_state, backend=_backend)

        breaker.add_listener(listener)

    def _breaker_for(self, backend: Optional[str]) -> Optional[CircuitBreaker]:
        """The breaker gating jobs on *backend* (``None`` = ungated)."""
        if backend is None:
            return None
        return self._breakers.get(backend)

    @property
    def breakers(self) -> Dict[str, CircuitBreaker]:
        """The registered circuit breakers, keyed by backend name (a copy)."""
        return dict(self._breakers)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        problem: MaxCutProblem,
        depth: int,
        *,
        seed: Optional[int] = None,
        timeout: Optional[float] = None,
        initial_parameters: Any = None,
        num_restarts: Optional[int] = None,
        candidate_pool: Optional[int] = None,
        checkpoint: bool = False,
    ) -> JobHandle:
        """Queue one QAOA solve; returns its :class:`JobHandle` immediately.

        With an explicit integer *seed* the solve is deterministic, so the
        service consults the result cache first (a warm hit completes the
        handle synchronously) and deduplicates against identical in-flight
        submissions.  Without a seed each job gets an independent derived
        seed and always runs.

        ``checkpoint=True`` (requires a configured ``checkpoint_store`` and
        an explicit *seed*) snapshots optimizer state at every restart
        boundary under this job's cache key: a killed or timed-out job
        resubmitted with the same arguments resumes from the last completed
        restart (``handle.resumed`` reports it) and still returns a result
        bit-identical to the uninterrupted run.  Transient-failure retries
        of the same job resume the same way.  The snapshot is deleted once
        the job completes.
        """
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        explicit_seed = seed is not None
        if explicit_seed:
            seed = int(seed)
        if checkpoint:
            if self._checkpoint_store is None:
                raise ConfigurationError(
                    "checkpoint=True requires the service to be built with a "
                    "checkpoint_store"
                )
            if not explicit_seed:
                raise ConfigurationError(
                    "checkpoint=True requires an explicit integer seed (resume "
                    "is only bit-identical for deterministic submissions)"
                )
        key = self.results.key(
            problem,
            depth,
            self._context,
            seed if explicit_seed else None,
            options={
                "service": self._options_signature,
                "per_call": {
                    "num_restarts": num_restarts,
                    "candidate_pool": candidate_pool,
                    "initial_parameters": _vector_payload(initial_parameters),
                },
            },
        )
        handle = JobHandle(key, self._clock)
        self.metrics.job_submitted()

        run_seed = seed if explicit_seed else self._derive_seed()

        slot: Optional[CheckpointSlot] = None
        if checkpoint:
            slot = CheckpointSlot(
                self._checkpoint_store,
                key,
                on_save=self.metrics.checkpoint_saved,
                on_resume=self.metrics.checkpoint_resumed,
            )

        def work() -> Any:
            result = self._solver.solve(
                problem,
                depth,
                initial_parameters=initial_parameters,
                num_restarts=num_restarts,
                candidate_pool=candidate_pool,
                seed=run_seed,
                checkpoint=slot,
            )
            if slot is not None:
                handle.resumed = slot.resumed
                # The job is done; its snapshot has served its purpose.
                slot.delete()
            return result

        deadline = None
        effective_timeout = timeout if timeout is not None else self._default_timeout
        if effective_timeout is not None:
            deadline = handle.submitted_at + float(effective_timeout)

        if explicit_seed:
            cached = self.results.get(key)
            if cached is not None:
                handle.from_cache = True
                handle._mark_completed(cached)
                self.metrics.job_completed(latency=0.0, queue_wait=0.0, run_time=0.0)
                return handle
            # Attach to an identical in-flight job instead of re-running.
            with self._state_lock:
                if not self._accepting:
                    raise ServiceError("service is shut down; submissions are closed")
                primary = self._inflight.get(key)
                if primary is not None:
                    primary.attached.append(handle)
                    handle.deduplicated = True
                    self.metrics.job_deduplicated()
                    return handle
                job = _Job(
                    handle, work, deadline, cacheable=True,
                    backend=self._context.backend,
                )
                self._inflight[key] = job
                self._enqueue_locked(job)
            return handle

        job = _Job(
            handle, work, deadline, cacheable=False, backend=self._context.backend
        )
        with self._state_lock:
            if not self._accepting:
                raise ServiceError("service is shut down; submissions are closed")
            self._enqueue_locked(job)
        return handle

    def submit_callable(
        self,
        work: Callable[[], Any],
        *,
        timeout: Optional[float] = None,
    ) -> JobHandle:
        """Queue an arbitrary callable on the worker pool (advanced).

        The callable runs under the same timeout/retry/metrics machinery as
        a solve but bypasses both caches.  Useful for tests and for custom
        workloads that want the service's concurrency control.
        """
        handle = JobHandle(None, self._clock)
        self.metrics.job_submitted()
        deadline = None
        effective_timeout = timeout if timeout is not None else self._default_timeout
        if effective_timeout is not None:
            deadline = handle.submitted_at + float(effective_timeout)
        job = _Job(
            handle, work, deadline, cacheable=False, backend=self._context.backend
        )
        with self._state_lock:
            if not self._accepting:
                raise ServiceError("service is shut down; submissions are closed")
            self._enqueue_locked(job)
        return handle

    def _enqueue_locked(self, job: _Job) -> None:
        """Queue *job*; caller holds ``_state_lock``."""
        if self._max_queue is not None and self._queued_jobs >= self._max_queue:
            self._inflight.pop(job.handle.cache_key, None)
            raise ServiceError(
                f"service queue is full ({self._max_queue} jobs); try again later"
            )
        self._queued_jobs += 1
        self.metrics.queue_depth_changed(1)
        self._queue.put(job)

    # ------------------------------------------------------------------
    # Circuit jobs
    # ------------------------------------------------------------------
    def submit_circuit(
        self,
        source: Any,
        observable: Any,
        *,
        parameters: Any = None,
        compiled: bool = True,
        lower_to: Optional[Any] = None,
        timeout: Optional[float] = None,
        name: Optional[str] = None,
    ) -> JobHandle:
        """Queue one imported-circuit expectation; returns its handle.

        *source* is anything the frontend ingests — OpenQASM 2 text, a
        :class:`~repro.frontend.ir.CircuitIR`, or an already-emitted
        :class:`~repro.quantum.circuit.QuantumCircuit` — and *observable*
        is any :class:`~repro.quantum.operators.PauliSum`.  The handle's
        ``result()`` is the scalar ``⟨observable⟩`` at *parameters* (a
        mapping or a vector in the circuit's first-appearance order;
        ``None`` for parameter-free circuits).

        The prepared
        :class:`~repro.frontend.evaluator.CircuitExpectationEvaluator` is
        shared through the service's program cache, keyed on circuit
        *content* (:meth:`~repro.frontend.ir.CircuitIR.cache_key`), the
        observable, the lowering basis and the *compiled* flag — so warm
        re-submissions with new parameter values re-bind one compiled
        program instead of re-parsing and re-lowering.  Expectations are
        exact and deterministic, hence always result-cached and
        deduplicated against identical in-flight submissions.  Circuit
        jobs run on the gate-level engine and are gated by the breaker
        registered under ``"circuit"`` (see the ``breakers=`` knob).
        """
        from repro.frontend.evaluator import CircuitExpectationEvaluator
        from repro.frontend.ir import CircuitIR
        from repro.frontend.parser import parse_qasm

        if isinstance(source, str):
            source = parse_qasm(source, name=name or "qasm")
        if isinstance(source, CircuitIR):
            circuit_key = source.cache_key()
        else:
            circuit_key = circuit_cache_key(source)
        program_key = stable_hash(
            {
                "kind": "circuit-expectation",
                "circuit": circuit_key,
                "observable": observable_cache_key(observable),
                "compiled": bool(compiled),
                "lower_to": None if lower_to is None else sorted(lower_to),
            }
        )
        prepared = source
        evaluator = self.programs.get_or_create(
            program_key,
            lambda: CircuitExpectationEvaluator(
                prepared, observable, compiled=compiled, lower_to=lower_to, name=name
            ),
        )
        key = stable_hash(
            {
                "kind": "circuit-result",
                "program": program_key,
                "parameters": _binding_payload(parameters),
            }
        )
        handle = JobHandle(key, self._clock)
        self.metrics.job_submitted()
        deadline = None
        effective_timeout = timeout if timeout is not None else self._default_timeout
        if effective_timeout is not None:
            deadline = handle.submitted_at + float(effective_timeout)

        def work() -> float:
            return evaluator.expectation(parameters)

        cached = self.results.get(key)
        if cached is not None:
            handle.from_cache = True
            handle._mark_completed(cached)
            self.metrics.job_completed(latency=0.0, queue_wait=0.0, run_time=0.0)
            return handle
        with self._state_lock:
            if not self._accepting:
                raise ServiceError("service is shut down; submissions are closed")
            primary = self._inflight.get(key)
            if primary is not None:
                primary.attached.append(handle)
                handle.deduplicated = True
                self.metrics.job_deduplicated()
                return handle
            job = _Job(handle, work, deadline, cacheable=True, backend="circuit")
            self._inflight[key] = job
            self._enqueue_locked(job)
        return handle

    # ------------------------------------------------------------------
    # Annealing jobs
    # ------------------------------------------------------------------
    def submit_anneal(
        self,
        problem: MaxCutProblem,
        anneal_time: Optional[float] = None,
        *,
        schedule: Any = None,
        method: str = "rk45",
        rtol: float = 1e-8,
        atol: float = 1e-10,
        num_steps: int = 400,
        dissipation: Any = None,
        context: Any = None,
        timeout: Optional[float] = None,
    ) -> JobHandle:
        """Queue one continuous-time anneal; returns its handle.

        Runs an :class:`~repro.dynamics.AnnealingSolver` solve — uniform
        superposition evolved through *schedule* (or a smooth ramp of length
        *anneal_time*) — on the worker pool; the handle's ``result()`` is
        its :class:`~repro.dynamics.AnnealingResult`.

        Anneals are seedless and deterministic, hence always result-cached
        (keyed on graph content, the canonical schedule payload and the
        solver options) and deduplicated against identical in-flight
        submissions.  The shared :class:`~repro.dynamics.AnnealingSolver`
        is reused through the program cache, keyed on its options.  The
        *context* (default: the gate-level ``"circuit"`` backend, the only
        built-in advertising ``supports_continuous``) selects the circuit
        breaker gating the job — see the ``breakers=`` knob.

        *dissipation* switches the anneal to a Lindblad master equation
        (a rate, a ``{jump: rate}`` mapping, or a
        :class:`~repro.quantum.noise.NoiseModel`).
        """
        from repro.dynamics.annealing import AnnealingSolver, dissipation_payload
        from repro.execution.keys import anneal_cache_key

        solver_key = stable_hash(
            {
                "kind": "anneal-solver",
                "method": str(method),
                "rtol": float(rtol),
                "atol": float(atol),
                "num_steps": int(num_steps),
                "dissipation": (
                    None if dissipation is None else dissipation_payload(dissipation)
                ),
                "context": (
                    None if context is None else as_execution_context(context).cache_key()
                ),
            }
        )
        solver = self.programs.get_or_create(
            solver_key,
            lambda: AnnealingSolver(
                method=method,
                rtol=rtol,
                atol=atol,
                num_steps=num_steps,
                dissipation=dissipation,
                context=context,
            ),
        )
        resolved = solver.resolve_schedule(anneal_time, schedule)
        key = anneal_cache_key(
            problem, resolved.payload(), options=solver.options_payload()
        )
        handle = JobHandle(key, self._clock)
        self.metrics.job_submitted()
        self.metrics.anneal_submitted()
        deadline = None
        effective_timeout = timeout if timeout is not None else self._default_timeout
        if effective_timeout is not None:
            deadline = handle.submitted_at + float(effective_timeout)

        def work() -> Any:
            return solver.solve(problem, schedule=resolved)

        cached = self.results.get(key)
        if cached is not None:
            handle.from_cache = True
            handle._mark_completed(cached)
            self.metrics.job_completed(latency=0.0, queue_wait=0.0, run_time=0.0)
            return handle
        with self._state_lock:
            if not self._accepting:
                raise ServiceError("service is shut down; submissions are closed")
            primary = self._inflight.get(key)
            if primary is not None:
                primary.attached.append(handle)
                handle.deduplicated = True
                self.metrics.job_deduplicated()
                return handle
            job = _Job(handle, work, deadline, cacheable=True, backend=solver.backend)
            self._inflight[key] = job
            self._enqueue_locked(job)
        return handle

    # ------------------------------------------------------------------
    # Expectation coalescing
    # ------------------------------------------------------------------
    def submit_expectation(
        self, problem: MaxCutProblem, depth: int, parameters: Any
    ) -> BatchFuture:
        """Request one cost expectation; concurrent requests sharing this
        problem/depth/context are batched into a single vectorized sweep.

        Returns a :class:`~repro.service.coalescer.BatchFuture`; call
        ``result(timeout=)`` for the value.
        """
        key, program = self.programs.get_or_compile(problem, depth, self._context)
        evaluator = ExpectationEvaluator(
            problem, depth, context=self._context, program=program
        )
        return self._coalescer.submit(key, evaluator, parameters)

    def expectation(
        self,
        problem: MaxCutProblem,
        depth: int,
        parameters: Any,
        timeout: Optional[float] = None,
    ) -> float:
        """Synchronous convenience wrapper around :meth:`submit_expectation`."""
        return self.submit_expectation(problem, depth, parameters).result(timeout)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SHUTDOWN:
                return
            with self._state_lock:
                self._queued_jobs -= 1
            self.metrics.queue_depth_changed(-1)
            self._run_job(job)

    def _finish(self, job: _Job, result: Any = None, error: Optional[BaseException] = None) -> None:
        """Fulfil the primary handle and every attached duplicate."""
        if job.handle.cache_key is not None:
            with self._state_lock:
                self._inflight.pop(job.handle.cache_key, None)
                attached = list(job.attached)
        else:
            attached = list(job.attached)
        handles = [job.handle] + attached
        for handle in handles:
            if error is None:
                handle._mark_completed(result)
            else:
                handle._mark_failed(error)

    def _run_job(self, job: _Job) -> None:
        handle = job.handle
        now = self._clock()
        if job.deadline is not None and now > job.deadline:
            # Expired while queued: fail without running.
            self.metrics.job_failed(timed_out=True)
            self._finish(
                job,
                error=JobTimeoutError(
                    f"job {handle.job_id} spent {now - handle.submitted_at:.3f} s "
                    f"in the queue, exceeding its timeout"
                ),
            )
            return
        if not handle._mark_running():
            # Cancelled while queued.
            self.metrics.job_cancelled()
            with self._state_lock:
                if handle.cache_key is not None:
                    self._inflight.pop(handle.cache_key, None)
                attached = list(job.attached)
            # Duplicates attached to a cancelled primary still expect an
            # answer; fail them explicitly rather than leaving them hanging.
            error = ServiceError(
                f"primary job {handle.job_id} for this submission was cancelled"
            )
            for dup in attached:
                dup._mark_failed(error)
            return

        queue_wait = (handle.started_at or now) - handle.submitted_at
        attempts = 0
        previous_delay: Optional[float] = None
        breaker = self._breaker_for(job.backend)
        while True:
            if breaker is not None and not breaker.allow():
                # The backend is considered unhealthy: shed the job fast
                # instead of burning its whole retry schedule.
                self.metrics.breaker_rejected(backend=job.backend)
                self.metrics.job_failed()
                self._finish(
                    job,
                    error=CircuitOpenError(
                        f"circuit breaker {breaker.name!r} is "
                        f"{breaker.state}; job {handle.job_id} shed"
                    ),
                )
                return
            started = self._clock()
            try:
                if self._fault_injector is not None:
                    self._fault_injector.check("worker.run")
                result = job.work()
                if breaker is not None:
                    breaker.record_success()
                break
            except TransientServiceError as error:
                if breaker is not None:
                    breaker.record_failure()
                attempts += 1
                if attempts > self._max_retries:
                    self.metrics.job_failed()
                    self._finish(job, error=error)
                    return
                handle.retries = attempts
                self.metrics.job_retried()
                previous_delay = self._retry_policy.sleep_before(
                    attempts, previous_delay
                )
            except BaseException as error:  # noqa: B036 - forwarded to the handle
                if breaker is not None:
                    breaker.record_failure()
                self.metrics.job_failed()
                self._finish(job, error=error)
                return
        run_time = self._clock() - started
        if job.deadline is not None and self._clock() > job.deadline:
            # The solve outlived its budget; timeouts are cooperative, so
            # this is detected after the fact.
            self.metrics.job_failed(timed_out=True)
            self._finish(
                job,
                error=JobTimeoutError(
                    f"job {handle.job_id} ran {run_time:.3f} s, exceeding its timeout"
                ),
            )
            return
        if job.cacheable and handle.cache_key is not None:
            self.results.put(handle.cache_key, result)
        self._finish(job, result=result)
        latency = self._clock() - handle.submitted_at
        self.metrics.job_completed(
            latency=latency, queue_wait=queue_wait, run_time=run_time
        )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the service.

        *drain* (default) lets queued jobs run to completion; otherwise
        everything still pending is cancelled.  *wait* joins the worker
        threads (bounded by *timeout* seconds per thread).  Idempotent.
        """
        with self._state_lock:
            if not self._accepting:
                return
            self._accepting = False
        if not drain:
            # Cancel every job still waiting in the queue.  Workers skip
            # cancelled jobs, so no new solves start after this loop.
            drained: List[_Job] = []
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is _SHUTDOWN:
                    continue
                drained.append(job)
            for job in drained:
                with self._state_lock:
                    self._queued_jobs -= 1
                self.metrics.queue_depth_changed(-1)
                if job.handle.cancel():
                    self.metrics.job_cancelled()
                with self._state_lock:
                    if job.handle.cache_key is not None:
                        self._inflight.pop(job.handle.cache_key, None)
                error = ServiceError("service shut down before the job ran")
                for dup in job.attached:
                    dup._mark_failed(error)
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for worker in self._workers:
                worker.join(timeout)
        self._coalescer.stop(drain=drain)

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"SolverService(backend={self._context.backend!r}, "
            f"workers={len(self._workers)}, queue_depth={self.queue_depth})"
        )


def _vector_payload(parameters: Any) -> Optional[list]:
    """Canonicalise initial parameters for the solve-result key."""
    if parameters is None:
        return None
    vector = getattr(parameters, "to_vector", None)
    if callable(vector):
        parameters = vector()
    return [float(value) for value in parameters]


def _binding_payload(parameters: Any) -> Any:
    """Canonicalise circuit parameter bindings for the circuit-result key.

    Mappings key by parameter *name* (a positional vector and a mapping are
    hashed differently on purpose — they only coincide when the mapping
    happens to follow first-appearance order, which the key must not guess).
    """
    if parameters is None:
        return None
    if isinstance(parameters, Mapping):
        return {
            getattr(key, "name", str(key)): float(value)
            for key, value in parameters.items()
        }
    return [float(value) for value in np.asarray(parameters, dtype=float).ravel()]
