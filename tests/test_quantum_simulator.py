"""Tests for repro.quantum.simulator."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.operators import PauliSum
from repro.quantum.parameter import Parameter
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.statevector import Statevector


@pytest.fixture
def simulator():
    return StatevectorSimulator()


class TestRun:
    def test_empty_circuit_returns_zero_state(self, simulator):
        state = simulator.run(QuantumCircuit(2))
        assert state.probability("00") == pytest.approx(1.0)

    def test_bell_state(self, simulator):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        state = simulator.run(circuit)
        probabilities = state.probabilities()
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[3] == pytest.approx(0.5)

    def test_ghz_state(self, simulator):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        state = simulator.run(circuit)
        assert state.probability("000") == pytest.approx(0.5)
        assert state.probability("111") == pytest.approx(0.5)

    def test_parametric_circuit_requires_values(self, simulator):
        theta = Parameter("theta")
        circuit = QuantumCircuit(1).rx(theta, 0)
        with pytest.raises(SimulationError):
            simulator.run(circuit)
        state = simulator.run(circuit, [np.pi])
        assert state.probability("1") == pytest.approx(1.0)

    def test_initial_state(self, simulator):
        circuit = QuantumCircuit(1).x(0)
        state = simulator.run(circuit, initial_state=Statevector.from_label("1"))
        assert state.probability("0") == pytest.approx(1.0)

    def test_initial_state_size_mismatch(self, simulator):
        with pytest.raises(SimulationError):
            simulator.run(QuantumCircuit(2), initial_state=Statevector.zero_state(1))

    def test_max_qubits_enforced(self):
        simulator = StatevectorSimulator(max_qubits=2)
        with pytest.raises(SimulationError):
            simulator.run(QuantumCircuit(3))

    def test_execution_counter(self, simulator):
        simulator.run(QuantumCircuit(1).h(0))
        simulator.run(QuantumCircuit(1).h(0))
        assert simulator.executed_circuits == 2


class TestExpectationAndSampling:
    def test_expectation_of_z_after_x(self, simulator):
        circuit = QuantumCircuit(1).x(0)
        observable = PauliSum([(1.0, "Z")])
        assert simulator.expectation(circuit, observable) == pytest.approx(-1.0)

    def test_sampling_distribution(self, simulator):
        circuit = QuantumCircuit(1).h(0)
        counts = simulator.sample(circuit, shots=2000, rng=3)
        assert set(counts) <= {"0", "1"}
        assert abs(counts.get("0", 0) - 1000) < 150

    def test_unitary_extraction(self, simulator):
        circuit = QuantumCircuit(1).h(0)
        unitary = simulator.unitary(circuit)
        np.testing.assert_allclose(
            unitary, np.array([[1, 1], [1, -1]]) / np.sqrt(2), atol=1e-12
        )

    def test_unitary_is_unitary_for_random_circuit(self, simulator, rng):
        circuit = QuantumCircuit(2)
        circuit.rx(rng.uniform(0, np.pi), 0).ry(rng.uniform(0, np.pi), 1).cx(0, 1)
        circuit.rz(rng.uniform(0, np.pi), 0).cz(0, 1)
        unitary = simulator.unitary(circuit)
        np.testing.assert_allclose(
            unitary @ unitary.conj().T, np.eye(4), atol=1e-10
        )
