"""Kernelised support-vector regression (the paper's "RSVM" model).

The model minimises the epsilon-insensitive loss with an L2 penalty over a
kernel expansion

    f(x) = sum_i alpha_i k(x_i, x) + b
    obj(alpha, b) = 1/2 alpha^T K alpha + C sum_i L_eps(f(x_i) - y_i)

in the primal.  The epsilon-insensitive loss is smoothed with a small
``delta`` so the objective is differentiable and can be minimised reliably
with L-BFGS-B; as ``delta -> 0`` the solution approaches the exact SVR.  This
keeps the implementation self-contained (no QP solver) while retaining the
defining properties of SVR: insensitivity inside the epsilon tube and an
explicit regularisation / complexity trade-off via ``C``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import optimize as scipy_optimize

from repro.exceptions import ModelError
from repro.ml.base import Regressor
from repro.ml.kernels import RBFKernel


class KernelSVR(Regressor):
    """Epsilon-insensitive kernel regression trained in the primal.

    Parameters
    ----------
    C:
        Trade-off between data fit and smoothness (larger = fit harder).
    epsilon:
        Half-width of the insensitive tube.
    length_scale:
        RBF kernel length scale (``None`` selects the median heuristic).
    max_iterations, tolerance:
        L-BFGS-B iteration cap and convergence tolerance.
    smoothing:
        Smoothing width ``delta`` of the differentiable epsilon-insensitive
        loss approximation.
    """

    def __init__(
        self,
        C: float = 10.0,
        epsilon: float = 0.01,
        length_scale: Optional[float] = None,
        max_iterations: int = 500,
        tolerance: float = 1e-8,
        smoothing: float = 1e-3,
        normalize_targets: bool = True,
        learning_rate: float = None,
    ):
        super().__init__()
        if C <= 0:
            raise ModelError(f"C must be positive, got {C}")
        if epsilon < 0:
            raise ModelError(f"epsilon must be >= 0, got {epsilon}")
        if length_scale is not None and length_scale <= 0:
            raise ModelError(f"length_scale must be positive, got {length_scale}")
        if max_iterations <= 0:
            raise ModelError("max_iterations must be positive")
        if smoothing <= 0:
            raise ModelError("smoothing must be positive")
        if learning_rate is not None and learning_rate <= 0:
            raise ModelError("learning_rate, when given, must be positive")
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.length_scale = length_scale
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.smoothing = float(smoothing)
        self.normalize_targets = bool(normalize_targets)
        # Accepted for backwards compatibility with the sub-gradient trainer;
        # the L-BFGS-B trainer does not need a step size.
        self.learning_rate = learning_rate

        self._train_features: Optional[np.ndarray] = None
        self._dual_coefficients: Optional[np.ndarray] = None
        self._bias: float = 0.0
        self._fitted_length_scale: Optional[float] = None
        self._target_mean: float = 0.0
        self._target_scale: float = 1.0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _median_heuristic(self, features: np.ndarray) -> float:
        from repro.ml.kernels import squared_distances

        distances = squared_distances(features, features)
        positive = distances[distances > 0]
        if positive.size == 0:
            return 1.0
        return float(np.sqrt(np.median(positive)))

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        if self.normalize_targets:
            self._target_mean = float(targets.mean())
            scale = float(targets.std())
            self._target_scale = scale if scale > 0 else 1.0
        else:
            self._target_mean, self._target_scale = 0.0, 1.0
        normalized = (targets - self._target_mean) / self._target_scale

        self._fitted_length_scale = (
            self.length_scale
            if self.length_scale is not None
            else self._median_heuristic(features)
        )
        kernel = RBFKernel(length_scale=self._fitted_length_scale)
        gram = kernel(features, features)

        num_samples = features.shape[0]
        delta = self.smoothing

        def loss_and_grad(residuals: np.ndarray) -> Tuple[float, np.ndarray]:
            # Smooth epsilon-insensitive loss: max(0, |r| - eps) with |.| and
            # max(0, .) replaced by their sqrt-smoothed counterparts.
            soft_abs = np.sqrt(residuals**2 + delta**2)
            slack = soft_abs - self.epsilon
            soft_max = 0.5 * (slack + np.sqrt(slack**2 + delta**2))
            d_softmax = 0.5 * (1.0 + slack / np.sqrt(slack**2 + delta**2))
            d_abs = residuals / soft_abs
            return float(np.sum(soft_max)), d_softmax * d_abs

        def objective(theta: np.ndarray) -> Tuple[float, np.ndarray]:
            alpha, bias = theta[:-1], theta[-1]
            kernel_alpha = gram @ alpha
            residuals = kernel_alpha + bias - normalized
            loss, loss_grad = loss_and_grad(residuals)
            value = 0.5 * float(alpha @ kernel_alpha) + self.C * loss
            grad_alpha = kernel_alpha + self.C * (gram @ loss_grad)
            grad_bias = self.C * float(np.sum(loss_grad))
            return value, np.concatenate([grad_alpha, [grad_bias]])

        result = scipy_optimize.minimize(
            objective,
            np.zeros(num_samples + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iterations, "ftol": self.tolerance},
        )

        self._train_features = features.copy()
        self._dual_coefficients = np.asarray(result.x[:-1], dtype=float)
        self._bias = float(result.x[-1])

    # ------------------------------------------------------------------
    # Prediction / introspection
    # ------------------------------------------------------------------
    def _predict(self, features: np.ndarray) -> np.ndarray:
        kernel = RBFKernel(length_scale=self._fitted_length_scale)
        cross = kernel(features, self._train_features)
        normalized = cross @ self._dual_coefficients + self._bias
        return normalized * self._target_scale + self._target_mean

    def support_vector_count(self, atol: float = 1e-8) -> int:
        """Number of training points with non-negligible dual coefficient."""
        if self._dual_coefficients is None:
            raise ModelError("model is not fitted")
        return int(np.sum(np.abs(self._dual_coefficients) > atol))

    def get_params(self) -> dict:
        return {
            "C": self.C,
            "epsilon": self.epsilon,
            "length_scale": self.length_scale,
            "max_iterations": self.max_iterations,
            "tolerance": self.tolerance,
            "smoothing": self.smoothing,
            "normalize_targets": self.normalize_targets,
        }
