"""QAOA core: parameters, circuits, expectation evaluation and the solver."""

from repro.qaoa.parameters import (
    QAOAParameters,
    canonicalize_for_graph,
    interpolate_parameters,
    linear_ramp_parameters,
    parameter_bounds,
    random_parameters,
)
from repro.qaoa.circuit_builder import build_maxcut_qaoa_circuit, build_parametric_qaoa_circuit
from repro.qaoa.fast_backend import (
    DenseMaxCutEvaluator,
    FastMaxCutEvaluator,
    fwht_inplace,
    walsh_hadamard_matrix,
)
from repro.qaoa.backends import CircuitBackend, FastBackend
from repro.qaoa.cost import BACKENDS, ExpectationEvaluator
from repro.qaoa.ensemble import EnsembleEvaluator
from repro.qaoa.result import QAOAResult, RestartRecord
from repro.qaoa.solver import QAOASolver
from repro.qaoa.landscape import depth_one_landscape

__all__ = [
    "QAOAParameters",
    "random_parameters",
    "parameter_bounds",
    "interpolate_parameters",
    "linear_ramp_parameters",
    "canonicalize_for_graph",
    "build_maxcut_qaoa_circuit",
    "build_parametric_qaoa_circuit",
    "DenseMaxCutEvaluator",
    "FastMaxCutEvaluator",
    "fwht_inplace",
    "walsh_hadamard_matrix",
    "BACKENDS",
    "FastBackend",
    "CircuitBackend",
    "ExpectationEvaluator",
    "EnsembleEvaluator",
    "QAOAResult",
    "RestartRecord",
    "QAOASolver",
    "depth_one_landscape",
]
