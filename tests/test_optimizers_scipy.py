"""Tests for the SciPy-backed optimizers used in the paper's Table I."""

import numpy as np
import pytest

from repro.optimizers.scipy_optimizers import (
    CobylaOptimizer,
    LBFGSBOptimizer,
    NelderMeadOptimizer,
    SLSQPOptimizer,
)

ALL_OPTIMIZERS = [LBFGSBOptimizer, NelderMeadOptimizer, SLSQPOptimizer, CobylaOptimizer]


def rosenbrock(x):
    x = np.asarray(x)
    return float((1 - x[0]) ** 2 + 100.0 * (x[1] - x[0] ** 2) ** 2)


def sphere(x):
    return float(np.sum(np.asarray(x) ** 2))


class TestConvergence:
    @pytest.mark.parametrize("cls", ALL_OPTIMIZERS)
    def test_sphere_minimum(self, cls):
        optimizer = cls(tolerance=1e-8, max_iterations=2000)
        result = optimizer.minimize(sphere, [1.0, -1.5, 0.5])
        assert result.optimal_value == pytest.approx(0.0, abs=1e-3)

    def test_lbfgsb_rosenbrock(self):
        result = LBFGSBOptimizer(tolerance=1e-10).minimize(rosenbrock, [-1.0, 1.0])
        np.testing.assert_allclose(result.optimal_parameters, [1.0, 1.0], atol=1e-3)

    @pytest.mark.parametrize("cls", ALL_OPTIMIZERS)
    def test_function_calls_counted(self, cls):
        optimizer = cls()
        result = optimizer.minimize(sphere, [2.0, 2.0])
        assert result.num_function_calls > 0
        assert result.optimizer_name == cls.method

    @pytest.mark.parametrize("cls", ALL_OPTIMIZERS)
    def test_maximize(self, cls):
        result = cls().maximize(lambda x: -sphere(x), [1.0, 1.0])
        assert result.optimal_value == pytest.approx(0.0, abs=1e-3)


class TestBoundsAndOptions:
    def test_lbfgsb_respects_bounds(self):
        result = LBFGSBOptimizer().minimize(
            sphere, [2.0, 2.0], bounds=[(1.0, 3.0), (1.0, 3.0)]
        )
        assert np.all(result.optimal_parameters >= 1.0 - 1e-9)

    def test_cobyla_ignores_bounds_without_error(self):
        result = CobylaOptimizer().minimize(sphere, [2.0], bounds=[(1.0, 3.0)])
        assert result.num_function_calls > 0

    def test_max_iterations_limits_calls(self):
        limited = NelderMeadOptimizer(max_iterations=5).minimize(
            rosenbrock, [5.0, -3.0]
        )
        unlimited = NelderMeadOptimizer(max_iterations=2000).minimize(
            rosenbrock, [5.0, -3.0]
        )
        assert limited.num_function_calls < unlimited.num_function_calls

    def test_history_recording(self):
        optimizer = LBFGSBOptimizer(record_history=True)
        result = optimizer.minimize(sphere, [1.0])
        assert len(result.history) == result.num_function_calls

    def test_reported_value_is_best_seen(self):
        optimizer = CobylaOptimizer(tolerance=1e-4)
        result = optimizer.minimize(sphere, [3.0, 3.0])
        # The reported optimum can never be worse than any evaluated point.
        assert result.optimal_value <= sphere([3.0, 3.0])

    def test_base_class_requires_method(self):
        from repro.exceptions import OptimizationError
        from repro.optimizers.scipy_optimizers import ScipyOptimizer

        with pytest.raises(OptimizationError):
            ScipyOptimizer()
