"""Package-wide defaults mirroring the paper's experimental setup.

The values below follow Section III-A of the paper: optimization domain
``beta_i in [0, pi]``, ``gamma_i in [0, 2*pi]``, functional tolerance
``1e-6``, 8-node problem graphs from the Erdos-Renyi ensemble with edge
probability 0.5, and 20 random restarts for the naive baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Upper bound of the mixing-angle domain (``beta_i in [0, BETA_MAX]``).
BETA_MAX = math.pi

#: Upper bound of the phase-separation-angle domain (``gamma_i in [0, GAMMA_MAX]``).
GAMMA_MAX = 2.0 * math.pi

#: Period of the mixing angle under the global bit-flip symmetry of MaxCut
#: (``beta -> beta + pi/2`` leaves the cost expectation unchanged).
BETA_SYMMETRY_PERIOD = math.pi / 2.0

#: Upper bound of the canonical phase-separation domain after fixing the
#: time-reversal (conjugation) symmetry.
GAMMA_CANONICAL_MAX = math.pi

#: Functional tolerance used by every classical optimizer in the paper.
DEFAULT_TOLERANCE = 1e-6

#: Number of nodes of every problem graph in the paper's data-set.
DEFAULT_NUM_NODES = 8

#: Edge probability of the Erdos-Renyi ensemble used by the paper.
DEFAULT_EDGE_PROBABILITY = 0.5

#: Number of random restarts used by the naive (random-initialization) flow.
DEFAULT_NUM_RESTARTS = 20

#: Depths for which the paper generates training data (p = 1 .. 6).
DATASET_DEPTHS = (1, 2, 3, 4, 5, 6)

#: Target depths evaluated in Table I (p_t = 2 .. 5).
TARGET_DEPTHS = (2, 3, 4, 5)

#: Number of graphs in the paper's full data-set.
DATASET_NUM_GRAPHS = 330

#: Train fraction of the 20:80 split used by the paper.
TRAIN_FRACTION = 0.2

#: The four classical optimizers evaluated in Table I.
TABLE1_OPTIMIZERS = ("L-BFGS-B", "Nelder-Mead", "SLSQP", "COBYLA")


@dataclass(frozen=True)
class PaperSetup:
    """Immutable bundle of the paper's experimental constants.

    Instances are cheap value objects; :func:`paper_setup` returns the
    canonical one.  Experiment configs embed a (possibly scaled-down) copy.
    """

    num_nodes: int = DEFAULT_NUM_NODES
    edge_probability: float = DEFAULT_EDGE_PROBABILITY
    num_graphs: int = DATASET_NUM_GRAPHS
    depths: tuple = DATASET_DEPTHS
    target_depths: tuple = TARGET_DEPTHS
    num_restarts: int = DEFAULT_NUM_RESTARTS
    tolerance: float = DEFAULT_TOLERANCE
    train_fraction: float = TRAIN_FRACTION

    @property
    def num_optimal_parameters(self) -> int:
        """Total number of optimal parameters in the full data-set.

        For the paper's setup this is ``330 * sum(2 * p for p in 1..6) =
        13,860``, the figure quoted in the abstract.
        """
        return self.num_graphs * sum(2 * depth for depth in self.depths)


def paper_setup() -> PaperSetup:
    """Return the canonical full-scale setup described in the paper."""
    return PaperSetup()
