"""Tests for the QAOA circuit builder, fast backend and expectation evaluator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.graphs.maxcut import MaxCutProblem
from repro.graphs.model import Graph
from repro.qaoa.circuit_builder import (
    build_maxcut_qaoa_circuit,
    build_parametric_qaoa_circuit,
    qaoa_gate_counts,
)
from repro.qaoa.cost import ExpectationEvaluator
from repro.qaoa.fast_backend import FastMaxCutEvaluator
from repro.qaoa.parameters import QAOAParameters, random_parameters
from repro.quantum.simulator import StatevectorSimulator


class TestCircuitBuilder:
    def test_structure_and_gate_counts(self, small_problem):
        params = QAOAParameters((0.3, 0.5), (0.2, 0.1))
        circuit = build_maxcut_qaoa_circuit(small_problem, params)
        counts = circuit.count_ops()
        edges = small_problem.graph.num_edges
        nodes = small_problem.num_qubits
        assert counts["h"] == nodes
        assert counts["cx"] == 2 * edges * 2
        assert counts["rz"] == edges * 2
        assert counts["rx"] == nodes * 2
        assert circuit.num_parameters == 0

    def test_gate_count_helper_matches_circuit(self, small_problem):
        params = QAOAParameters((0.3, 0.5, 0.1), (0.2, 0.1, 0.4))
        circuit = build_maxcut_qaoa_circuit(small_problem, params)
        expected = qaoa_gate_counts(small_problem, 3)
        assert circuit.size() == expected["total"]

    def test_parametric_circuit_binding(self, triangle_problem):
        circuit, gammas, betas = build_parametric_qaoa_circuit(triangle_problem, 2)
        assert circuit.num_parameters == 4
        bound = circuit.bind({gammas[0]: 0.1, gammas[1]: 0.2, betas[0]: 0.3, betas[1]: 0.4})
        assert bound.num_parameters == 0

    def test_parametric_circuit_invalid_depth(self, triangle_problem):
        with pytest.raises(ConfigurationError):
            build_parametric_qaoa_circuit(triangle_problem, 0)

    def test_parametric_matches_bound_circuit(self, triangle_problem):
        params = QAOAParameters((0.7,), (0.4,))
        direct = build_maxcut_qaoa_circuit(triangle_problem, params)
        symbolic, gammas, betas = build_parametric_qaoa_circuit(triangle_problem, 1)
        bound = symbolic.bind({gammas[0]: 0.7, betas[0]: 0.4})
        simulator = StatevectorSimulator()
        assert simulator.run(direct).equiv(simulator.run(bound))


class TestFastBackend:
    def test_agrees_with_circuit_simulation(self, small_problem, rng):
        hamiltonian = small_problem.cost_hamiltonian()
        simulator = StatevectorSimulator()
        fast = FastMaxCutEvaluator(small_problem)
        for depth in (1, 2, 3):
            params = random_parameters(depth, rng)
            circuit = build_maxcut_qaoa_circuit(small_problem, params)
            circuit_value = simulator.expectation(circuit, hamiltonian)
            assert fast.expectation(params) == pytest.approx(circuit_value, abs=1e-9)

    def test_statevectors_agree_up_to_global_phase(self, triangle_problem, rng):
        fast = FastMaxCutEvaluator(triangle_problem)
        simulator = StatevectorSimulator()
        params = random_parameters(2, rng)
        circuit_state = simulator.run(build_maxcut_qaoa_circuit(triangle_problem, params))
        assert fast.statevector(params).equiv(circuit_state)

    def test_zero_angles_give_uniform_state(self, small_problem):
        fast = FastMaxCutEvaluator(small_problem)
        value = fast.expectation(QAOAParameters((0.0,), (0.0,)))
        assert value == pytest.approx(small_problem.random_cut_expectation())

    def test_single_edge_analytic_formula(self):
        # For a single edge with U_C = exp(-i gamma C) and mixer exp(-i beta X)
        # per qubit, <C>(gamma, beta) = 1/2 + 1/2 sin(4 beta) sin(gamma).
        problem = MaxCutProblem(Graph(2, [(0, 1)]))
        fast = FastMaxCutEvaluator(problem)
        for gamma, beta in [(0.3, 0.2), (1.0, 0.7), (2.5, 1.4)]:
            expected = 0.5 + 0.5 * np.sin(4 * beta) * np.sin(gamma)
            assert fast.expectation(QAOAParameters((gamma,), (beta,))) == pytest.approx(
                expected, abs=1e-9
            )

    def test_expectation_bounded_by_optimum(self, small_problem, rng):
        fast = FastMaxCutEvaluator(small_problem)
        optimum = small_problem.max_cut_value()
        for depth in (1, 2):
            value = fast.expectation(random_parameters(depth, rng))
            assert 0.0 <= value <= optimum + 1e-9

    def test_evaluation_counter(self, triangle_problem, rng):
        fast = FastMaxCutEvaluator(triangle_problem)
        fast.expectation(random_parameters(1, rng))
        fast.expectation(random_parameters(1, rng))
        assert fast.num_evaluations == 2

    def test_sample_cut_distribution(self, triangle_problem, rng):
        fast = FastMaxCutEvaluator(triangle_problem)
        distribution = fast.sample_cut_distribution(random_parameters(1, rng), 50, rng=rng)
        assert sum(item["count"] for item in distribution.values()) == 50
        for bitstring, item in distribution.items():
            assert item["cut_value"] == triangle_problem.cut_value(bitstring)

    def test_qubit_limit(self):
        problem = MaxCutProblem(Graph(3, [(0, 1), (1, 2)]))
        with pytest.raises(SimulationError):
            FastMaxCutEvaluator(problem, max_qubits=2)


class TestExpectationEvaluator:
    def test_backends_agree(self, triangle_problem, rng):
        fast = ExpectationEvaluator(triangle_problem, 2, context="fast")
        circuit = ExpectationEvaluator(triangle_problem, 2, context="circuit")
        vector = random_parameters(2, rng).to_vector()
        assert fast.expectation(vector) == pytest.approx(
            circuit.expectation(vector), abs=1e-9
        )

    def test_negative_expectation_is_objective(self, triangle_problem, rng):
        evaluator = ExpectationEvaluator(triangle_problem, 1)
        vector = random_parameters(1, rng).to_vector()
        assert evaluator.negative_expectation(vector) == pytest.approx(
            -evaluator.expectation(vector)
        )

    def test_wrong_vector_length_raises(self, triangle_problem):
        evaluator = ExpectationEvaluator(triangle_problem, 2)
        with pytest.raises(ConfigurationError):
            evaluator.expectation([0.1, 0.2])

    def test_invalid_backend_raises(self, triangle_problem):
        with pytest.raises(ConfigurationError):
            ExpectationEvaluator(triangle_problem, 1, context="gpu")

    def test_invalid_depth_raises(self, triangle_problem):
        with pytest.raises(ConfigurationError):
            ExpectationEvaluator(triangle_problem, 0)

    def test_evaluation_counter(self, triangle_problem, rng):
        evaluator = ExpectationEvaluator(triangle_problem, 1)
        evaluator.expectation(random_parameters(1, rng).to_vector())
        assert evaluator.num_evaluations == 1

    def test_approximation_ratio(self, triangle_problem):
        evaluator = ExpectationEvaluator(triangle_problem, 1)
        ratio = evaluator.approximation_ratio([0.0, 0.0])
        assert ratio == pytest.approx(
            triangle_problem.random_cut_expectation() / triangle_problem.max_cut_value()
        )
