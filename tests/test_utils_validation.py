"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_qubit_index,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")


class TestCheckPositive:
    def test_accepts_float(self):
        assert check_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestCheckInRange:
    def test_accepts_boundary(self):
        assert check_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(2.0, 0.0, 1.0, "x")


class TestCheckQubitIndex:
    def test_accepts_valid(self):
        assert check_qubit_index(2, 3) == 2

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_qubit_index(3, 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_qubit_index(-1, 3)
