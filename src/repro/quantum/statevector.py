"""Pure-state representation and gate application.

The state of an ``n``-qubit register is stored as a flat ``complex128`` array
of length ``2**n``.  Qubit 0 is the *least-significant bit* of the basis
index, i.e. the amplitude of ``|q_{n-1} ... q_1 q_0>`` lives at index
``sum(q_k << k)``.  This matches the convention used by Qiskit and keeps
bit-twiddling in the MaxCut code straightforward.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_qubit_index


class Statevector:
    """An ``n``-qubit pure state with in-place gate application."""

    __slots__ = ("_data", "_num_qubits")

    def __init__(self, data: Sequence[complex], *, copy: bool = True, validate: bool = True):
        array = np.array(data, dtype=complex, copy=copy).reshape(-1)
        size = array.size
        num_qubits = int(round(math.log2(size))) if size > 0 else -1
        if size == 0 or 2**num_qubits != size:
            raise SimulationError(
                f"statevector length must be a power of two, got {size}"
            )
        if validate and not np.isclose(float(np.vdot(array, array).real), 1.0, atol=1e-8):
            raise SimulationError("statevector is not normalised")
        self._data = array
        self._num_qubits = num_qubits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """The all-zeros computational basis state ``|0...0>``."""
        if num_qubits <= 0:
            raise SimulationError(f"num_qubits must be positive, got {num_qubits}")
        data = np.zeros(2**num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data, copy=False, validate=False)

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a computational basis state from a bit-string label.

        The label is written most-significant qubit first, e.g. ``"10"`` is
        the state with qubit 1 set and qubit 0 clear.
        """
        if not label or any(ch not in "01" for ch in label):
            raise SimulationError(f"label must be a non-empty bit-string, got {label!r}")
        index = int(label, 2)
        data = np.zeros(2 ** len(label), dtype=complex)
        data[index] = 1.0
        return cls(data, copy=False, validate=False)

    @classmethod
    def uniform_superposition(cls, num_qubits: int) -> "Statevector":
        """The equal superposition ``H^{(x)n} |0...0>``."""
        if num_qubits <= 0:
            raise SimulationError(f"num_qubits must be positive, got {num_qubits}")
        dim = 2**num_qubits
        data = np.full(dim, 1.0 / math.sqrt(dim), dtype=complex)
        return cls(data, copy=False, validate=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Dimension of the underlying Hilbert space (``2**num_qubits``)."""
        return self._data.size

    @property
    def data(self) -> np.ndarray:
        """The raw amplitude array (a view; do not mutate)."""
        return self._data

    def copy(self) -> "Statevector":
        """Return an independent copy of the state."""
        return Statevector(self._data, copy=True, validate=False)

    def norm(self) -> float:
        """The 2-norm of the amplitude vector (1 for a physical state)."""
        return float(np.linalg.norm(self._data))

    def is_normalized(self, atol: float = 1e-8) -> bool:
        """Whether the state has unit norm within *atol*."""
        return bool(abs(self.norm() - 1.0) <= atol)

    def inner(self, other: "Statevector") -> complex:
        """The inner product ``<self|other>``."""
        if other.num_qubits != self.num_qubits:
            raise SimulationError("inner product requires equal register sizes")
        return complex(np.vdot(self._data, other._data))

    def fidelity(self, other: "Statevector") -> float:
        """State fidelity ``|<self|other>|^2`` (global-phase insensitive)."""
        return float(abs(self.inner(other)) ** 2)

    def equiv(self, other: "Statevector", atol: float = 1e-8) -> bool:
        """Whether two states are equal up to a global phase."""
        return bool(abs(self.fidelity(other) - 1.0) <= atol)

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "Statevector":
        """Apply a ``2^k x 2^k`` unitary to the listed qubits, in place.

        The first entry of *qubits* is the most-significant bit of the
        operator's sub-space basis index (matching
        :mod:`repro.quantum.gates`).  Returns ``self`` for chaining.
        """
        qubits = list(qubits)
        k = len(qubits)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2**k, 2**k):
            raise SimulationError(
                f"matrix shape {matrix.shape} does not match {k} qubit(s)"
            )
        if len(set(qubits)) != k:
            raise SimulationError(f"duplicate qubits in {qubits}")
        for qubit in qubits:
            check_qubit_index(qubit, self._num_qubits)

        n = self._num_qubits
        # Axis for qubit q in the (2,)*n tensor view (C order => axis 0 is the
        # most-significant bit, i.e. qubit n-1).
        axes = [n - 1 - q for q in qubits]
        tensor = self._data.reshape((2,) * n)
        tensor = np.moveaxis(tensor, axes, range(k))
        shape = tensor.shape
        tensor = matrix @ tensor.reshape(2**k, -1)
        tensor = tensor.reshape(shape)
        tensor = np.moveaxis(tensor, range(k), axes)
        self._data = np.ascontiguousarray(tensor).reshape(-1)
        return self

    def apply_diagonal(self, diagonal: np.ndarray) -> "Statevector":
        """Multiply the state element-wise by a full-register diagonal."""
        diagonal = np.asarray(diagonal, dtype=complex).reshape(-1)
        if diagonal.size != self.dim:
            raise SimulationError(
                f"diagonal length {diagonal.size} does not match dimension {self.dim}"
            )
        self._data = self._data * diagonal
        return self

    # ------------------------------------------------------------------
    # Measurement statistics
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Measurement probabilities for every computational basis state."""
        # real**2 + imag**2 avoids the sqrt/square round-trip of abs()**2 on
        # the hottest observable path.
        return self._data.real**2 + self._data.imag**2

    def probability(self, bitstring: str) -> float:
        """Probability of observing the given bit-string (MSB first)."""
        if len(bitstring) != self._num_qubits or any(ch not in "01" for ch in bitstring):
            raise SimulationError(
                f"bitstring must have {self._num_qubits} binary digits, got {bitstring!r}"
            )
        return float(self.probabilities()[int(bitstring, 2)])

    def expectation_diagonal(self, diagonal: np.ndarray) -> float:
        """Expectation value of a real diagonal observable."""
        diagonal = np.asarray(diagonal, dtype=float).reshape(-1)
        if diagonal.size != self.dim:
            raise SimulationError(
                f"diagonal length {diagonal.size} does not match dimension {self.dim}"
            )
        return float(np.dot(self.probabilities(), diagonal))

    def sample_counts(
        self, shots: int, rng: RandomState = None
    ) -> Dict[str, int]:
        """Sample measurement outcomes; returns ``{bitstring: count}``.

        Bit-strings are rendered most-significant qubit first.
        """
        if shots <= 0:
            raise SimulationError(f"shots must be positive, got {shots}")
        generator = ensure_rng(rng)
        probabilities = self.probabilities()
        probabilities = probabilities / probabilities.sum()
        outcomes = generator.choice(self.dim, size=shots, p=probabilities)
        # Aggregate in numpy instead of a per-shot Python loop: at high shot
        # counts only the number of *distinct* outcomes costs Python time.
        values, multiplicities = np.unique(outcomes, return_counts=True)
        width = self._num_qubits
        return {
            format(int(value), f"0{width}b"): int(count)
            for value, count in zip(values, multiplicities)
        }

    def most_probable_bitstring(self) -> str:
        """The basis state with the largest probability (MSB first)."""
        index = int(np.argmax(self.probabilities()))
        return format(index, f"0{self._num_qubits}b")

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.dim

    def __repr__(self) -> str:
        return f"Statevector(num_qubits={self._num_qubits})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Statevector):
            return NotImplemented
        return self.num_qubits == other.num_qubits and np.allclose(
            self._data, other._data
        )

    def __hash__(self) -> None:  # pragma: no cover - mutable object
        raise TypeError("Statevector is mutable and unhashable")


def tensor_product(first: Statevector, second: Statevector) -> Statevector:
    """Kronecker product of two states (*first* occupies the high qubits)."""
    data = np.kron(first.data, second.data)
    return Statevector(data, copy=False, validate=False)
