"""Quickstart for the solver service tier: async jobs, caching, coalescing.

Run with::

    python examples/service_quickstart.py

Set ``EXAMPLES_SMOKE=1`` to shrink every size for the CI smoke job.

The whole example imports only from the top-level :mod:`repro` facade —
``repro.serve`` (plus the graph helpers) is all a service client needs.
"""

import os
import threading
import time

import repro

SMOKE = os.environ.get("EXAMPLES_SMOKE") == "1"


def main() -> None:
    num_problems = 2 if SMOKE else 4
    repeats = 4 if SMOKE else 8
    depth = 1 if SMOKE else 2

    problems = [
        repro.MaxCutProblem(repro.erdos_renyi_graph(8, 0.5, seed=seed))
        for seed in range(num_problems)
    ]

    with repro.serve(max_workers=4) as service:
        # 1. Async submission: handles come back immediately, results on demand.
        #    The workload repeats each configuration `repeats` times — the
        #    service deduplicates identical in-flight jobs and serves repeats
        #    from the result cache, so only `num_problems` real solves happen.
        start = time.perf_counter()
        handles = [
            service.submit(problems[i % num_problems], depth, seed=11)
            for i in range(num_problems * repeats)
        ]
        results = [handle.result(timeout=300) for handle in handles]
        elapsed = time.perf_counter() - start
        print(
            f"{len(handles)} submissions -> {len(results)} results "
            f"in {elapsed * 1e3:.0f} ms"
        )
        for index, problem in enumerate(problems):
            result = results[index]
            print(
                f"  problem {index}: expectation {result.optimal_expectation:.4f}, "
                f"approximation ratio {result.approximation_ratio:.3f}"
            )

        # 2. A warm resubmission is served from the result cache in microseconds.
        start = time.perf_counter()
        warm = service.submit(problems[0], depth, seed=11)
        warm.result(timeout=10)
        print(
            f"warm resubmission: {(time.perf_counter() - start) * 1e6:.0f} us "
            f"(from_cache={warm.from_cache})"
        )

        # 3. Concurrent expectation requests coalesce into one batched sweep.
        num_requests = 8 if SMOKE else 16
        values = [None] * num_requests

        def request(index: int) -> None:
            values[index] = service.expectation(
                problems[0], depth, [0.1 * (index + 1)] * (2 * depth), timeout=60
            )

        threads = [
            threading.Thread(target=request, args=(i,)) for i in range(num_requests)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        print(f"{num_requests} expectation requests, first value {values[0]:.4f}")

        # 4. The metrics snapshot tells the story in numbers.
        snapshot = service.metrics.to_dict()
        print("jobs:", snapshot["jobs"])
        print("result cache:", snapshot["caches"]["result"])
        print("coalescer:", snapshot["coalescer"])
        p50 = snapshot["latency"]["job_seconds"]["p50"]
        p99 = snapshot["latency"]["job_seconds"]["p99"]
        print(f"job latency p50 {p50 * 1e3:.1f} ms, p99 {p99 * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
