"""Tests for the finite-shot statistical layer.

Covers the :class:`~repro.quantum.noise.ShotEstimator` itself (seeded
determinism, 3-sigma convergence to the exact expectation, chi-square sanity
of the underlying ``sample_counts`` distribution) and its integration into
:class:`~repro.qaoa.cost.ExpectationEvaluator`,
:class:`~repro.qaoa.solver.QAOASolver` and the acceleration runners.
"""

import numpy as np
import pytest
from scipy import stats

from repro.acceleration.baseline import NaiveQAOARunner
from repro.acceleration.comparison import aggregate_records, compare_on_problem
from repro.acceleration.two_level import TwoLevelQAOARunner
from repro.exceptions import ConfigurationError, SimulationError
from repro.execution import ExecutionContext
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.maxcut import MaxCutProblem
from repro.optimizers.spsa import SPSAOptimizer
from repro.prediction.pipeline import PredictorPipelineConfig, train_default_predictor
from repro.qaoa.cost import ExpectationEvaluator
from repro.qaoa.fast_backend import FastMaxCutEvaluator
from repro.qaoa.parameters import QAOAParameters
from repro.qaoa.solver import QAOASolver
from repro.quantum.noise import (
    NoiseModel,
    ReadoutErrorModel,
    ShotEstimator,
    split_shots,
)
from repro.quantum.statevector import Statevector


def _problem(seed: int = 3, nodes: int = 6) -> MaxCutProblem:
    return MaxCutProblem(erdos_renyi_graph(nodes, 0.5, seed=seed))


def _qaoa_state(problem: MaxCutProblem) -> Statevector:
    return FastMaxCutEvaluator(problem).statevector(
        QAOAParameters(gammas=(0.4,), betas=(0.3,))
    )


# ---------------------------------------------------------------------------
# ShotEstimator core
# ---------------------------------------------------------------------------

class TestShotEstimator:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShotEstimator(np.zeros(3), shots=10)  # not a power of two
        with pytest.raises(ConfigurationError):
            ShotEstimator(np.zeros(4), shots=0)
        estimator = ShotEstimator(np.zeros(4), shots=5)
        with pytest.raises(SimulationError):
            estimator.estimate(Statevector.zero_state(3))

    def test_seeded_determinism(self):
        """Same rng -> identical estimate, through both sampling entries."""
        problem = _problem()
        state = _qaoa_state(problem)
        diagonal = problem.cost_diagonal()
        for method in ("estimate", "estimate_probabilities"):
            values = []
            for _ in range(2):
                estimator = ShotEstimator(diagonal, shots=500, rng=11)
                if method == "estimate":
                    values.append(estimator.estimate(state))
                else:
                    values.append(
                        estimator.estimate_probabilities(state.probabilities())
                    )
            assert values[0] == values[1]

    def test_shots_accounting(self):
        estimator = ShotEstimator(np.array([0.0, 1.0]), shots=25, rng=0)
        state = Statevector.uniform_superposition(1)
        estimator.estimate(state)
        estimator.estimate(state, shots=10)
        estimator.estimate_probabilities(state.probabilities())
        assert estimator.shots_used == 25 + 10 + 25

    def test_converges_to_exact_within_3_sigma(self):
        """|estimate - exact| <= 3 sqrt(Var[h]/shots) for a seeded draw."""
        problem = _problem()
        state = _qaoa_state(problem)
        diagonal = problem.cost_diagonal()
        probabilities = state.probabilities()
        exact = float(probabilities @ diagonal)
        variance = float(probabilities @ diagonal**2) - exact**2
        for shots in (1000, 10000, 100000):
            estimator = ShotEstimator(diagonal, shots=shots, rng=2020)
            estimate = estimator.estimate(state)
            tolerance = 3.0 * np.sqrt(variance / shots)
            assert abs(estimate - exact) <= tolerance, (shots, estimate, exact)

    def test_estimate_entries_share_outcome_law(self):
        """sample_counts- and multinomial-based estimates agree statistically."""
        problem = _problem()
        state = _qaoa_state(problem)
        diagonal = problem.cost_diagonal()
        estimator = ShotEstimator(diagonal, shots=50000, rng=7)
        via_counts = estimator.estimate(state)
        via_multinomial = estimator.estimate_probabilities(state.probabilities())
        exact = float(state.probabilities() @ diagonal)
        variance = float(state.probabilities() @ diagonal**2) - exact**2
        tolerance = 6.0 * np.sqrt(variance / 50000)
        assert abs(via_counts - via_multinomial) <= tolerance

    def test_estimate_batch_shapes_and_determinism(self):
        problem = _problem()
        evaluator = FastMaxCutEvaluator(problem)
        matrix = np.array([[0.4, 0.3], [0.1, 0.2], [0.7, 0.9]])
        columns = evaluator.statevector_batch(matrix)
        probabilities = columns.real**2 + columns.imag**2
        first = ShotEstimator(problem.cost_diagonal(), 200, rng=4).estimate_batch(
            probabilities
        )
        second = ShotEstimator(problem.cost_diagonal(), 200, rng=4).estimate_batch(
            probabilities
        )
        assert first.shape == (3,)
        assert np.array_equal(first, second)

    def test_split_shots(self):
        assert split_shots(10, 4) == [3, 3, 2, 2]
        assert split_shots(2, 4) == [1, 1, 0, 0]
        assert sum(split_shots(1023, 7)) == 1023
        with pytest.raises(ConfigurationError):
            split_shots(10, 0)


class TestSampleCountsDistribution:
    def test_chi_square_against_exact_probabilities(self):
        """Sampled counts are consistent with the exact distribution.

        Chi-square goodness-of-fit over the basis states with expected
        counts >= 5 (sparser outcomes are pooled), seeded so the test is
        deterministic.
        """
        problem = _problem()
        state = _qaoa_state(problem)
        shots = 20000
        counts = state.sample_counts(shots, rng=np.random.default_rng(2020))
        probabilities = state.probabilities()
        observed = np.zeros(state.dim)
        for bitstring, count in counts.items():
            observed[int(bitstring, 2)] = count
        expected = probabilities * shots
        dense = expected >= 5.0
        observed_binned = np.append(observed[dense], observed[~dense].sum())
        expected_binned = np.append(expected[dense], expected[~dense].sum())
        # Guard: an empty pooled bin would make chisquare reject the shapes.
        if expected_binned[-1] == 0.0:
            observed_binned = observed_binned[:-1]
            expected_binned = expected_binned[:-1]
        statistic, p_value = stats.chisquare(observed_binned, expected_binned)
        assert p_value > 1e-3, (statistic, p_value)


# ---------------------------------------------------------------------------
# ExpectationEvaluator integration
# ---------------------------------------------------------------------------

class TestStochasticEvaluator:
    def test_configuration_validation(self):
        problem = _problem()
        with pytest.raises(ConfigurationError):
            ExpectationEvaluator(problem, 1, context=ExecutionContext(shots=0))
        with pytest.raises(ConfigurationError):
            ExpectationEvaluator(problem, 1, context=ExecutionContext(trajectories=0))

    def test_default_configuration_is_exact(self):
        problem = _problem()
        evaluator = ExpectationEvaluator(problem, 1)
        assert not evaluator.is_stochastic
        assert evaluator.shots is None and evaluator.noise_model is None
        assert evaluator.trajectories == 1
        assert evaluator.shots_used == 0

    @pytest.mark.parametrize("backend", ["fast", "circuit"])
    def test_shot_estimates_deterministic_per_backend(self, backend):
        problem = _problem()
        point = [0.4, 0.3]
        values = [
            ExpectationEvaluator(
                problem, 1, context=ExecutionContext(backend=backend, shots=256), rng=5
            ).expectation(point)
            for _ in range(2)
        ]
        assert values[0] == values[1]

    @pytest.mark.parametrize("backend", ["fast", "circuit"])
    def test_shot_estimate_converges(self, backend):
        problem = _problem()
        point = [0.4, 0.3]
        exact = ExpectationEvaluator(problem, 1).expectation(point)
        state = _qaoa_state(problem)
        diagonal = problem.cost_diagonal()
        variance = float(state.probabilities() @ diagonal**2) - exact**2
        shots = 50000
        estimate = ExpectationEvaluator(
            problem, 1, context=ExecutionContext(backend=backend, shots=shots), rng=2020
        ).expectation(point)
        assert abs(estimate - exact) <= 3.0 * np.sqrt(variance / shots)

    def test_shots_used_accounting(self):
        problem = _problem()
        evaluator = ExpectationEvaluator(
            problem, 1, context=ExecutionContext(shots=100), rng=0
        )
        evaluator.expectation([0.4, 0.3])
        evaluator.expectation_batch(np.array([[0.4, 0.3], [0.1, 0.2]]))
        assert evaluator.shots_used == 300
        assert evaluator.num_evaluations == 3

    def test_noise_splits_shot_budget_over_trajectories(self):
        problem = _problem()
        evaluator = ExpectationEvaluator(
            problem,
            1,
            context=ExecutionContext(
                shots=100,
                noise_model=NoiseModel.uniform_depolarizing(0.01),
                trajectories=8,
            ),
            rng=1,
        )
        evaluator.expectation([0.4, 0.3])
        assert evaluator.shots_used == 100
        assert evaluator.trajectories_run == 8

    def test_noise_without_shots_averages_exact_trajectories(self):
        problem = _problem()
        evaluator = ExpectationEvaluator(
            problem,
            1,
            context=ExecutionContext(
                noise_model=NoiseModel.uniform_depolarizing(0.0), trajectories=3
            ),
            rng=1,
        )
        # Zero-strength noise: trajectory average equals the exact value.
        exact = ExpectationEvaluator(problem, 1).expectation([0.4, 0.3])
        assert evaluator.expectation([0.4, 0.3]) == pytest.approx(exact, abs=1e-12)
        assert evaluator.shots_used == 0

    @pytest.mark.parametrize("backend", ["fast", "circuit"])
    def test_stochastic_batch_deterministic(self, backend):
        problem = _problem()
        matrix = np.array([[0.4, 0.3], [0.1, 0.2]])
        results = [
            ExpectationEvaluator(
                problem, 1, context=ExecutionContext(backend=backend, shots=128), rng=9
            ).expectation_batch(matrix)
            for _ in range(2)
        ]
        assert np.array_equal(results[0], results[1])

    def test_noisy_batch_matches_scalar_loop(self):
        problem = _problem()
        matrix = np.array([[0.4, 0.3], [0.1, 0.2]])
        model = NoiseModel.uniform_depolarizing(0.02)
        stochastic = ExecutionContext(shots=64, noise_model=model, trajectories=2)
        batch = ExpectationEvaluator(
            problem, 1, context=stochastic, rng=3
        ).expectation_batch(matrix)
        scalar_evaluator = ExpectationEvaluator(problem, 1, context=stochastic, rng=3)
        scalar = np.array([scalar_evaluator.expectation(row) for row in matrix])
        assert np.array_equal(batch, scalar)


# ---------------------------------------------------------------------------
# Solver and runner integration
# ---------------------------------------------------------------------------

class TestStochasticSolver:
    def test_defaults_to_spsa_for_stochastic_oracle(self):
        assert QAOASolver(context=ExecutionContext(shots=64)).optimizer.name == "SPSA"
        assert (
            QAOASolver(
                context=ExecutionContext(
                    noise_model=NoiseModel.uniform_depolarizing(0.01)
                )
            ).optimizer.name
            == "SPSA"
        )
        assert QAOASolver().optimizer.name == "L-BFGS-B"

    def test_explicit_optimizer_is_respected(self):
        solver = QAOASolver("COBYLA", ExecutionContext(shots=64))
        assert solver.optimizer.name == "COBYLA"
        instance = SPSAOptimizer(max_iterations=10)
        assert QAOASolver(instance, ExecutionContext(shots=32)).optimizer is instance

    def test_shot_budget_reported(self):
        problem = _problem()
        result = QAOASolver(context=ExecutionContext(shots=64), seed=0).solve(problem, 1)
        assert result.optimizer_name == "SPSA"
        assert result.num_shots == 64 * result.num_function_calls
        assert result.to_dict()["num_shots"] == result.num_shots

    def test_exact_solve_reports_zero_shots(self):
        problem = _problem()
        result = QAOASolver(seed=0).solve(problem, 1)
        assert result.num_shots == 0

    def test_seeded_solve_is_reproducible(self):
        problem = _problem()
        results = [
            QAOASolver(
                context=ExecutionContext(
                    shots=64,
                    noise_model=NoiseModel.uniform_depolarizing(0.005),
                    trajectories=2,
                ),
                seed=4,
            ).solve(problem, 1, seed=7)
            for _ in range(2)
        ]
        assert results[0].optimal_expectation == results[1].optimal_expectation
        assert np.array_equal(
            results[0].optimal_parameters.to_vector(),
            results[1].optimal_parameters.to_vector(),
        )
        assert results[0].num_shots == results[1].num_shots

    def test_per_solve_seed_reproducible_on_long_lived_solver(self):
        """A per-call seed reproduces the stochastic run, SPSA draws included.

        The auto-wired SPSA is rebuilt on the call-level generator, so state
        must not leak from one solve() into the next on the same instance.
        """
        problem = _problem()
        solver = QAOASolver(context=ExecutionContext(shots=64), seed=0)
        first = solver.solve(problem, 1, seed=11)
        second = solver.solve(problem, 1, seed=11)
        assert first.optimal_expectation == second.optimal_expectation
        assert np.array_equal(
            first.optimal_parameters.to_vector(),
            second.optimal_parameters.to_vector(),
        )

    def test_screening_shots_are_accounted(self):
        problem = _problem()
        result = QAOASolver(
            context=ExecutionContext(shots=32),
            num_restarts=1,
            candidate_pool=8,
            seed=0,
        ).solve(problem, 1)
        assert result.initialization == "screened"
        assert result.num_shots == 32 * result.num_function_calls

    def test_solver_forwards_readout_error(self):
        """Readout corruption + mitigation thread through the whole solve."""
        problem = _problem()
        readout = ReadoutErrorModel(problem.num_qubits, p0_to_1=0.05, p1_to_0=0.02)
        for mitigate in (False, True):
            readout_context = ExecutionContext(
                shots=64, readout_error=readout, mitigate_readout=mitigate
            )
            solver = QAOASolver(context=readout_context, seed=0)
            assert solver.readout_error is readout
            first = solver.solve(problem, 1, seed=21)
            second = QAOASolver(context=readout_context, seed=0).solve(
                problem, 1, seed=21
            )
            assert first.optimal_expectation == second.optimal_expectation
            assert first.num_shots == 64 * first.num_function_calls

    def test_solver_density_mode_is_deterministic_without_shots(self):
        """Exact noisy density oracle: no SPSA auto-wiring, no randomness."""
        problem = _problem()
        model = NoiseModel.uniform_depolarizing(0.01)
        density_context = ExecutionContext(
            backend="circuit", density=True, noise_model=model
        )
        solver = QAOASolver(context=density_context, seed=0)
        assert solver.density and solver.optimizer.name == "L-BFGS-B"
        first = solver.solve(problem, 1, seed=3)
        second = QAOASolver(context=density_context, seed=0).solve(problem, 1, seed=3)
        assert first.optimal_expectation == second.optimal_expectation
        assert first.num_shots == 0


class TestStochasticRunners:
    @pytest.fixture(scope="class")
    def tiny_predictor(self):
        predictor, _ = train_default_predictor(
            PredictorPipelineConfig(num_graphs=4, depths=(1, 2), num_restarts=1),
            seed=2020,
        )
        return predictor

    def test_naive_runner_reports_shots(self):
        problem = _problem()
        outcome = NaiveQAOARunner(
            context=ExecutionContext(shots=32), num_restarts=2, seed=0
        ).run(problem, 2)
        assert outcome.optimizer_name == "SPSA"
        assert outcome.total_shots == 32 * outcome.total_function_calls

    def test_two_level_runner_reports_shots(self, tiny_predictor):
        problem = _problem(seed=9)
        runner = TwoLevelQAOARunner(
            tiny_predictor, context=ExecutionContext(shots=32), seed=0
        )
        outcome = runner.run(problem, 2)
        assert outcome.total_shots == 32 * outcome.total_function_calls
        assert outcome.level1_result.num_shots > 0
        assert outcome.level2_result.num_shots > 0

    def test_comparison_records_shot_budgets(self, tiny_predictor):
        problem = _problem(seed=9)
        record = compare_on_problem(
            problem,
            2,
            tiny_predictor,
            context=ExecutionContext(shots=32),
            num_restarts=2,
            seed=1,
        )
        assert record.naive_total_shots > 0
        assert record.two_level_total_shots > 0
        summary = aggregate_records([record])
        assert summary.naive_mean_shots == record.naive_total_shots
        assert summary.as_dict()["two_level_mean_shots"] == record.two_level_total_shots

    def test_exact_comparison_backwards_compatible(self, tiny_predictor):
        problem = _problem(seed=9)
        record = compare_on_problem(problem, 2, tiny_predictor, num_restarts=2, seed=1)
        assert record.naive_total_shots == 0
        assert record.two_level_total_shots == 0
        assert record.optimizer_name == "L-BFGS-B"
