"""The QAOA optimization loop (quantum circuit + classical optimizer).

:class:`QAOASolver` is the closed loop of Fig. 1(a)/(d): it repeatedly
evaluates the cost expectation through an
:class:`~repro.qaoa.cost.ExpectationEvaluator` and lets a classical local
optimizer update the angles until the functional tolerance is met.  The
solver supports both random initialization (the paper's naive baseline,
possibly multi-restart) and explicit initial parameters (the ML-predicted
warm start of the two-level flow).

*How* the oracle runs is one :class:`~repro.execution.context.ExecutionContext`
(``context=ExecutionContext(shots=..., noise_model=...)``); when the context
makes the oracle stochastic and no optimizer is named explicitly, the solver
defaults to SPSA, whose two-evaluation gradient estimate tolerates a noisy
objective, and the result reports the total shot budget next to the
function-call count.

Examples
--------
>>> from repro.graphs import MaxCutProblem, erdos_renyi_graph
>>> from repro.qaoa.solver import QAOASolver
>>> problem = MaxCutProblem(erdos_renyi_graph(6, 0.5, seed=3))
>>> result = QAOASolver(seed=0).solve(problem, depth=1)
>>> result.optimizer_name, result.num_shots
('L-BFGS-B', 0)
>>> result.approximation_ratio > 0.7
True

A shot-budgeted solve picks SPSA and accounts for every shot:

>>> from repro.execution import ExecutionContext
>>> noisy = QAOASolver(context=ExecutionContext(shots=128), seed=0).solve(problem, depth=1)
>>> noisy.optimizer_name
'SPSA'
>>> noisy.num_shots == 128 * noisy.num_function_calls
True
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.config import DEFAULT_TOLERANCE
from repro.exceptions import CheckpointError, ConfigurationError
from repro.execution.context import (
    UNSET,
    ContextLike,
    ExecutionContext,
    resolve_execution_context,
)
from repro.execution.keys import compile_cache_key, solve_cache_key
from repro.execution.registry import get_backend
from repro.graphs.maxcut import MaxCutProblem
from repro.optimizers.base import Optimizer
from repro.optimizers.registry import get_optimizer
from repro.optimizers.spsa import SPSAOptimizer
from repro.qaoa.cost import ExpectationEvaluator
from repro.qaoa.parameters import QAOAParameters, parameter_bounds, random_parameters
from repro.qaoa.result import QAOAResult, RestartRecord
from repro.quantum.noise import NoiseModel, ReadoutErrorModel
from repro.resilience.checkpoint import (
    CheckpointSlot,
    CheckpointStore,
    SolverCheckpoint,
    capture_rng_state,
    restore_rng_state,
)
from repro.utils.rng import RandomState, as_optional_seed, ensure_rng

InitialParameters = Union[None, QAOAParameters, Sequence[float]]

#: ``checkpoint=`` accepts a bound slot or a bare store (key derived).
CheckpointLike = Union[None, CheckpointSlot, CheckpointStore]

#: Iteration cap of the default SPSA optimizer wired in for stochastic
#: oracles (each iteration costs two evaluations x shots; the classic
#: 10000-iteration cap of the exact optimizers would burn millions of shots).
STOCHASTIC_SPSA_MAX_ITERATIONS = 200

#: Functional tolerance of the default stochastic SPSA (shot noise makes the
#: exact 1e-6 tolerance unreachable; SPSA stalls out against this instead).
STOCHASTIC_SPSA_TOLERANCE = 1e-3


class QAOASolver:
    """Run the QAOA optimization loop for MaxCut problems.

    Parameters
    ----------
    optimizer:
        Optimizer name (e.g. ``"L-BFGS-B"``), an
        :class:`~repro.optimizers.base.Optimizer` instance, or ``None``
        (default) to auto-select: ``"L-BFGS-B"`` for the exact oracle, a
        noise-tolerant SPSA (see :data:`STOCHASTIC_SPSA_MAX_ITERATIONS`)
        when the execution context makes the oracle stochastic.
    context:
        An :class:`~repro.execution.context.ExecutionContext` describing how
        expectations are computed (backend, shots, noise, density, readout),
        or a backend-name shorthand such as ``"circuit"``; ``None`` is the
        exact default context.  Forwarded unchanged to every
        :class:`~repro.qaoa.cost.ExpectationEvaluator` the solver builds;
        the consumed shot budget is reported as :attr:`QAOAResult.num_shots`.
    num_restarts:
        Number of random restarts used when no initial parameters are given.
    tolerance:
        Functional tolerance (only used when *optimizer* is given by name).
    use_bounds:
        When true, the angle domain ``gamma in [0, 2*pi]``, ``beta in [0, pi]``
        is also enforced during optimization (the paper restricts only the
        random initialization, which is the default behaviour here).
    candidate_pool:
        When set to a value larger than the restart count, random
        initialization draws that many candidate angle sets, scores them all
        in **one** batched expectation evaluation
        (:meth:`~repro.qaoa.cost.ExpectationEvaluator.expectation_batch`),
        and only the best ``num_restarts`` starts enter the (expensive)
        optimization loop.  ``None`` (default) keeps the classic behaviour —
        every random start is optimized — so fixed-seed results are unchanged
        unless screening is explicitly requested.
    seed:
        Seed or generator for random initialization and the stochastic
        oracle; when omitted, the context's ``seed`` policy applies.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector`; when set,
        every objective evaluation first checks the ``backend.evaluate``
        site, so chaos tests can fail (or delay) the oracle on an exact,
        replayable schedule.
    backend, shots, noise_model, trajectories, density, readout_error, mitigate_readout:
        **Deprecated** — the legacy kwarg spelling of the context fields.
        Passing any of them builds the equivalent context internally
        (bit-identical results) and emits one
        :class:`~repro.execution.context.ExecutionDeprecationWarning`.
    """

    def __init__(
        self,
        optimizer: Union[str, Optimizer, None] = None,
        context: ContextLike = None,
        *,
        num_restarts: int = 1,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = 10000,
        use_bounds: bool = False,
        candidate_pool: Optional[int] = None,
        backend=UNSET,
        shots=UNSET,
        noise_model=UNSET,
        trajectories=UNSET,
        density=UNSET,
        readout_error=UNSET,
        mitigate_readout=UNSET,
        seed: RandomState = None,
        fault_injector=None,
    ):
        context = resolve_execution_context(
            context,
            {
                "backend": backend,
                "shots": shots,
                "noise_model": noise_model,
                "trajectories": trajectories,
                "density": density,
                "readout_error": readout_error,
                "mitigate_readout": mitigate_readout,
            },
            owner="QAOASolver",
            stacklevel=3,
        )
        if num_restarts < 1:
            raise ConfigurationError(f"num_restarts must be >= 1, got {num_restarts}")
        if candidate_pool is not None and candidate_pool < 1:
            raise ConfigurationError(
                f"candidate_pool must be >= 1, got {candidate_pool}"
            )
        self._context = context
        if seed is None:
            seed = context.seed
        self._rng = ensure_rng(seed)
        # With the exact density oracle, gate noise is deterministic — only
        # a finite shot budget needs the noise-tolerant default optimizer.
        stochastic = context.is_stochastic
        # Auto-wired SPSA is rebuilt per solve() seeded from the call-level
        # rng, so an explicit per-solve seed reproduces the whole stochastic
        # run (optimizer perturbations included); these settings are kept to
        # do that.
        self._auto_spsa_settings = None
        if isinstance(optimizer, Optimizer):
            self._optimizer = optimizer
        elif optimizer is None and stochastic:
            # The natural default for a noisy oracle: gradient estimates from
            # two evaluations per iteration, bounded iteration/shot budget,
            # and a tolerance the shot noise can actually reach.
            self._auto_spsa_settings = (
                min(max_iterations, STOCHASTIC_SPSA_MAX_ITERATIONS),
                max(tolerance, STOCHASTIC_SPSA_TOLERANCE),
            )
            # Template instance backing the .optimizer property / name only;
            # every solve() rebuilds it on the call-level generator.
            self._optimizer = SPSAOptimizer(
                max_iterations=self._auto_spsa_settings[0],
                tolerance=self._auto_spsa_settings[1],
            )
        else:
            self._optimizer = get_optimizer(
                optimizer if optimizer is not None else "L-BFGS-B",
                tolerance=tolerance,
                max_iterations=max_iterations,
            )
        self._num_restarts = int(num_restarts)
        self._use_bounds = bool(use_bounds)
        self._fault_injector = fault_injector
        self._candidate_pool = None if candidate_pool is None else int(candidate_pool)
        # Compiled-program LRU keyed on problem *content* + depth (via
        # compile_cache_key): repeated solves of the same instance — the
        # optimizer-comparison loops, the service tier — reuse the backend
        # program instead of re-deriving cost diagonals / recompiling the
        # parametric circuit on every solve() call.
        self._program_cache: "OrderedDict[str, object]" = OrderedDict()
        self._program_cache_lock = threading.Lock()

    _PROGRAM_CACHE_CAPACITY = 32

    def _compiled_program(self, problem: MaxCutProblem, depth: int):
        """The cached compiled backend program for ``(problem, depth)``.

        Keyed on graph content, so structurally equal problem objects share
        one program.  Thread-safe: the lock covers only cache bookkeeping;
        two threads racing on a cold key may both compile (one result wins
        the slot), which duplicates work but never corrupts state.
        """
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        key = compile_cache_key(problem, depth, self._context)
        with self._program_cache_lock:
            program = self._program_cache.get(key)
            if program is not None:
                self._program_cache.move_to_end(key)
                return program
        program = get_backend(self._context.backend).compile(
            problem, int(depth), density=self._context.density
        )
        with self._program_cache_lock:
            self._program_cache[key] = program
            if len(self._program_cache) > self._PROGRAM_CACHE_CAPACITY:
                self._program_cache.popitem(last=False)
        return program

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def optimizer(self) -> Optimizer:
        """The classical optimizer driving the loop."""
        return self._optimizer

    @property
    def num_restarts(self) -> int:
        """Default number of random restarts."""
        return self._num_restarts

    @property
    def context(self) -> ExecutionContext:
        """The execution context forwarded to every evaluator."""
        return self._context

    @property
    def backend(self) -> str:
        """Expectation-evaluation backend name."""
        return self._context.backend

    @property
    def candidate_pool(self) -> Optional[int]:
        """Size of the batched start-screening pool (``None`` = no screening)."""
        return self._candidate_pool

    @property
    def shots(self) -> Optional[int]:
        """Shot budget per evaluation (``None`` = exact readout)."""
        return self._context.shots

    @property
    def noise_model(self) -> Optional[NoiseModel]:
        """The noise model applied to every evaluation, if any."""
        return self._context.noise_model

    @property
    def density(self) -> bool:
        """Whether evaluations run through the exact density-matrix oracle."""
        return self._context.density

    @property
    def readout_error(self) -> Optional[ReadoutErrorModel]:
        """The readout assignment-error model forwarded to evaluators."""
        return self._context.readout_error

    def __repr__(self) -> str:
        return (
            f"QAOASolver(optimizer={self._optimizer.name!r}, "
            f"num_restarts={self._num_restarts}, context={self._context!r})"
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        problem: MaxCutProblem,
        depth: int,
        *,
        initial_parameters: InitialParameters = None,
        num_restarts: Optional[int] = None,
        candidate_pool: Optional[int] = None,
        seed: RandomState = None,
        checkpoint: CheckpointLike = None,
        checkpoint_interval: Optional[int] = None,
    ) -> QAOAResult:
        """Optimize a depth-*depth* QAOA instance of *problem*.

        When *initial_parameters* is provided the loop starts exactly there
        (single run, ``initialization="warm"`` in the result); otherwise
        *num_restarts* random initializations are optimized independently and
        the best restart is reported as the optimum.  A *candidate_pool*
        larger than the restart count turns on batched start screening (see
        the class docstring); the screening evaluations are included in the
        reported function-call count.

        Checkpointing: *checkpoint* is a
        :class:`~repro.resilience.checkpoint.CheckpointSlot` (or a bare
        :class:`~repro.resilience.checkpoint.CheckpointStore`, in which case
        the slot key is derived from the solve configuration).  The solver
        snapshots the pre-drawn restart starts immediately, and the full
        state — completed restart records, rng bit-generator state, shot
        accounting — after every restart; re-invoking an interrupted solve
        with the same slot resumes from the last completed restart and
        returns a result **bit-identical** to the uninterrupted run.
        *checkpoint_interval* additionally writes an observational progress
        marker every that-many objective evaluations (resume granularity
        stays the restart boundary).  Completed snapshots are left in the
        store; callers that no longer need them delete the slot.
        """
        rng = ensure_rng(seed) if seed is not None else self._rng
        slot = self._as_checkpoint_slot(checkpoint, problem, depth, seed)
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        snapshot = slot.load() if slot is not None else None
        if snapshot is not None:
            if snapshot.depth != int(depth):
                raise CheckpointError(
                    f"checkpoint was written for depth {snapshot.depth}, "
                    f"cannot resume a depth-{depth} solve"
                )
            if snapshot.rng_state is not None:
                # Continue the exact sample stream of the interrupted run on
                # a fresh generator (the solver's shared rng is untouched).
                rng = restore_rng_state(snapshot.rng_state)
        optimizer = self._optimizer
        if self._auto_spsa_settings is not None:
            # Rebuild the auto-wired SPSA on the call-level generator so a
            # per-solve seed reproduces the optimizer's perturbation draws
            # too (a long-lived instance would leak state across solves).
            spsa_iterations, spsa_tolerance = self._auto_spsa_settings
            optimizer = SPSAOptimizer(
                max_iterations=spsa_iterations,
                tolerance=spsa_tolerance,
                seed=rng,
            )
        evaluator = ExpectationEvaluator(
            problem,
            depth,
            context=self._context,
            rng=rng,
            program=self._compiled_program(problem, depth),
        )
        objective = evaluator.expectation
        if self._fault_injector is not None:
            objective = self._fault_injector.wrap("backend.evaluate", objective)
        bounds = parameter_bounds(depth) if self._use_bounds else None
        screening_calls = 0
        records: List[RestartRecord] = []
        base_shots = 0

        if snapshot is not None:
            starts = [
                QAOAParameters.from_vector(np.asarray(start, dtype=float))
                for start in snapshot.starts
            ]
            initialization = snapshot.initialization
            records = [RestartRecord.from_payload(record) for record in snapshot.records]
            screening_calls = int(snapshot.screening_calls)
            base_shots = int(snapshot.shots_used)
        elif initial_parameters is not None:
            starts = [self._coerce_parameters(initial_parameters, depth)]
            initialization = "warm"
        else:
            restarts = num_restarts if num_restarts is not None else self._num_restarts
            if restarts < 1:
                raise ConfigurationError(f"num_restarts must be >= 1, got {restarts}")
            pool = candidate_pool if candidate_pool is not None else self._candidate_pool
            if pool is not None and pool > restarts:
                candidates = [random_parameters(depth, rng) for _ in range(pool)]
                scores = evaluator.expectation_batch(
                    np.array([candidate.to_vector() for candidate in candidates])
                )
                screening_calls = len(candidates)
                keep = np.argsort(scores)[::-1][:restarts]
                starts = [candidates[index] for index in keep]
                initialization = "screened"
            else:
                starts = [random_parameters(depth, rng) for _ in range(restarts)]
                initialization = "random"

        boundary_rng_state = capture_rng_state(rng) if slot is not None else None

        def snapshot_now(progress=None) -> SolverCheckpoint:
            return SolverCheckpoint(
                depth=int(depth),
                initialization=initialization,
                starts=[[float(v) for v in start.to_vector()] for start in starts],
                records=[record.to_payload() for record in records],
                rng_state=boundary_rng_state,
                screening_calls=screening_calls,
                shots_used=base_shots + evaluator.shots_used,
                progress=progress,
            )

        if slot is not None and snapshot is None:
            # Starts are now pinned: a kill during the very first restart
            # still resumes against the exact same initializations.
            slot.save(snapshot_now())

        best_record: Optional[RestartRecord] = None
        for record in records:
            if best_record is None or record.optimal_expectation > best_record.optimal_expectation:
                best_record = record
        for index in range(len(records), len(starts)):
            observer = None
            if slot is not None and checkpoint_interval is not None:
                observer = self._progress_observer(
                    slot, snapshot_now, index, checkpoint_interval
                )
            record = self._run_single(
                objective, starts[index], bounds, optimizer, observer=observer
            )
            records.append(record)
            if best_record is None or record.optimal_expectation > best_record.optimal_expectation:
                best_record = record
            if slot is not None:
                boundary_rng_state = capture_rng_state(rng)
                slot.save(snapshot_now())

        total_calls = screening_calls + int(
            sum(record.num_function_calls for record in records)
        )
        return QAOAResult(
            problem_name=problem.name,
            depth=depth,
            optimizer_name=self._optimizer.name,
            optimal_parameters=best_record.optimal_parameters,
            optimal_expectation=best_record.optimal_expectation,
            max_cut_value=problem.max_cut_value(),
            num_function_calls=total_calls,
            num_restarts=len(records),
            restarts=records,
            initialization=initialization,
            num_shots=base_shots + evaluator.shots_used,
            context=self._context,
        )

    def _as_checkpoint_slot(
        self,
        checkpoint: CheckpointLike,
        problem: MaxCutProblem,
        depth: int,
        seed: RandomState,
    ) -> Optional[CheckpointSlot]:
        """Normalize the ``checkpoint=`` argument to a bound slot."""
        if checkpoint is None:
            return None
        if isinstance(checkpoint, CheckpointSlot):
            return checkpoint
        if isinstance(checkpoint, CheckpointStore):
            key = solve_cache_key(
                problem, depth, self._context, as_optional_seed(seed), None
            )
            return CheckpointSlot(checkpoint, key)
        raise CheckpointError(
            f"checkpoint must be a CheckpointSlot or CheckpointStore, "
            f"got {type(checkpoint).__name__}"
        )

    @staticmethod
    def _progress_observer(slot, snapshot_now, restart_index, interval):
        """An evaluation observer writing periodic progress markers.

        Progress markers are observational (resume granularity stays the
        restart boundary) but they make long restarts visible in the store
        and exercise the save path under chaos tests.
        """
        best = [None]

        def observe(count: int, value: float) -> None:
            if best[0] is None or value > best[0]:
                best[0] = value
            if count % interval == 0:
                slot.save(
                    snapshot_now(
                        progress={
                            "restart_index": int(restart_index),
                            "evaluations": int(count),
                            "best_value": best[0],
                        }
                    )
                )

        return observe

    def _run_single(
        self,
        objective,
        start: QAOAParameters,
        bounds,
        optimizer: Optional[Optimizer] = None,
        observer=None,
    ) -> RestartRecord:
        optimizer = optimizer if optimizer is not None else self._optimizer
        result = optimizer.maximize(
            objective, start.to_vector(), bounds, observer=observer
        )
        return RestartRecord(
            initial_parameters=start,
            optimal_parameters=QAOAParameters.from_vector(result.optimal_parameters),
            optimal_expectation=float(result.optimal_value),
            num_function_calls=int(result.num_function_calls),
            converged=bool(result.converged),
        )

    @staticmethod
    def _coerce_parameters(
        initial_parameters: InitialParameters, depth: int
    ) -> QAOAParameters:
        if isinstance(initial_parameters, QAOAParameters):
            parameters = initial_parameters
        else:
            parameters = QAOAParameters.from_vector(
                np.asarray(initial_parameters, dtype=float)
            )
        if parameters.depth != depth:
            raise ConfigurationError(
                f"initial parameters are for depth {parameters.depth}, "
                f"but the circuit depth is {depth}"
            )
        return parameters
