"""Multi-output regression by fitting one base model per output column.

The parameter predictor maps 3 input features to ``2 * p_t`` outputs; wrapping
any single-output :class:`~repro.ml.base.Regressor` with
:class:`MultiOutputRegressor` provides the vector-valued interface.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

import numpy as np

from repro.exceptions import ModelError
from repro.ml.base import Regressor, as_2d_features

ModelFactory = Union[Regressor, Callable[[], Regressor]]


class MultiOutputRegressor:
    """Fit an independent clone of a base regressor for every target column."""

    def __init__(self, base_model: ModelFactory):
        self._factory = self._make_factory(base_model)
        self._models: List[Regressor] = []
        self._num_outputs: Optional[int] = None

    @staticmethod
    def _make_factory(base_model: ModelFactory) -> Callable[[], Regressor]:
        if isinstance(base_model, Regressor):
            return base_model.clone
        if callable(base_model):
            return base_model
        raise ModelError(
            "base_model must be a Regressor instance or a zero-argument factory"
        )

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return bool(self._models)

    @property
    def num_outputs(self) -> Optional[int]:
        """Number of output columns seen at fit time."""
        return self._num_outputs

    @property
    def models(self) -> List[Regressor]:
        """The fitted per-output models (in output order)."""
        return list(self._models)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MultiOutputRegressor":
        """Fit one model per column of *targets* (shape ``(n_samples, n_outputs)``)."""
        features = as_2d_features(features)
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets.reshape(-1, 1)
        if targets.ndim != 2 or targets.shape[0] != features.shape[0]:
            raise ModelError(
                f"targets must be (n_samples, n_outputs) with n_samples="
                f"{features.shape[0]}, got shape {targets.shape}"
            )
        self._models = []
        for column in range(targets.shape[1]):
            model = self._factory()
            if not isinstance(model, Regressor):
                raise ModelError("the model factory must produce Regressor instances")
            model.fit(features, targets[:, column])
            self._models.append(model)
        self._num_outputs = targets.shape[1]
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict all outputs; returns shape ``(n_samples, n_outputs)``."""
        if not self.is_fitted:
            raise ModelError("MultiOutputRegressor must be fitted before predicting")
        features = as_2d_features(features)
        predictions = [model.predict(features) for model in self._models]
        return np.column_stack(predictions)

    def __repr__(self) -> str:
        return (
            f"MultiOutputRegressor(num_outputs={self._num_outputs}, "
            f"fitted={self.is_fitted})"
        )
