"""Gates and measurements for the continuous-time dynamics subsystem.

Benchmarks :mod:`repro.dynamics` — the annealing solver, the adaptive
integrator and the structured Lindblad path — against its closed-form
oracles.  Every measurement is appended to ``BENCH_dynamics.json`` in the
repository root (uploaded by CI as part of the ``bench-results`` artifact).

Hard gates (the subsystem's acceptance bar):

* the Lindblad integrator agrees with the exact
  :class:`~repro.quantum.density.DensityMatrix` Kraus oracle for a
  time-independent depolarizing generator to 1e-8;
* :class:`~repro.dynamics.AnnealingSolver` reaches >= 0.95 approximation
  ratio on the bundled small graphs at long anneal times;
* the adaptive RK45 stepper needs >= 3x fewer steps than fixed-step RK4 at
  matched accuracy on the annealing workload;
* the structured superoperator-matvec integration beats the naive dense
  ``expm`` oracle by >= 5x at n = 5 (the largest register where the dense
  ``4^n x 4^n`` matrix is cheap to build — at the issue's n = 8 the dense
  matrix alone would occupy ``65536^2`` complex entries, ~68 GB, so the
  structured path's n = 8 timing is recorded without a dense baseline).

In smoke mode (``--bench-smoke``) the workloads shrink and the relative
speed gates become advisory (recorded, not asserted); the numerical
agreement and approximation-ratio gates always hold.
"""

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.dynamics import (
    AnnealingSchedule,
    AnnealingSolver,
    Hamiltonian,
    Lindbladian,
    evolve,
)
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.maxcut import MaxCutProblem
from repro.quantum.density import DensityMatrix
from repro.quantum.noise import DepolarizingChannel

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_dynamics.json"
_RESULTS = {}

_STEP_RATIO_FLOOR = 3.0
_MATVEC_SPEEDUP_FLOOR = 5.0
_RATIO_FLOOR = 0.95


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json(bench_smoke):
    """Write every recorded measurement to ``BENCH_dynamics.json``."""
    yield
    payload = {
        "benchmark": "dynamics",
        "smoke": bool(bench_smoke),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": _RESULTS,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _best_of(repeats: int, func) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _annealing_workload(num_nodes: int, anneal_time: float):
    problem = MaxCutProblem(erdos_renyi_graph(num_nodes, 0.5, seed=3))
    driver = Hamiltonian.transverse_field(num_nodes)
    cost = Hamiltonian(problem.cost_hamiltonian() * -1.0, name="NegCost")
    generator = AnnealingSchedule.smooth(anneal_time).interpolate(driver, cost)
    dim = 1 << num_nodes
    uniform = np.full(dim, 1.0 / np.sqrt(dim), dtype=complex)
    return generator, uniform


def test_lindblad_matches_kraus_oracle(bench_smoke):
    """Acceptance gate: integrated depolarizing semigroup vs exact Kraus.

    The time-independent uniform depolarizing generator at rate ``r``
    integrates per qubit to the discrete
    :class:`~repro.quantum.noise.DepolarizingChannel` with
    ``p(t) = 3/4 (1 - exp(-4 r t / 3))``; both paths must agree to 1e-8.
    """
    num_qubits, rate, horizon = 3, 0.25, 1.3
    lind = Lindbladian.depolarizing(num_qubits, rate)
    rng = np.random.default_rng(7)
    raw = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
    rho0 = raw @ raw.conj().T
    rho0 = rho0 / np.trace(rho0)
    integrated = evolve(lind, rho0, times=horizon, rtol=1e-10, atol=1e-12)
    probability = 0.75 * (1.0 - np.exp(-4.0 * rate * horizon / 3.0))
    oracle = DensityMatrix(rho0, validate=False)
    for qubit in range(num_qubits):
        oracle = oracle.apply_channel(DepolarizingChannel(probability), qubit)
    diff = float(
        np.abs(integrated.final_state.reshape(8, 8) - oracle.data).max()
    )
    _RESULTS["kraus_oracle"] = {
        "num_qubits": num_qubits,
        "rate": rate,
        "time": horizon,
        "channel_probability": probability,
        "max_abs_diff": diff,
    }
    assert diff < 1e-8, diff


def test_annealing_reaches_ratio_floor(bench_smoke):
    """Acceptance gate: >= 0.95 approximation ratio at long anneal times."""
    num_nodes = 6 if bench_smoke else 10
    problem = MaxCutProblem(erdos_renyi_graph(num_nodes, 0.5, seed=num_nodes))
    solver = AnnealingSolver(rtol=1e-7, atol=1e-9)
    start = time.perf_counter()
    result = solver.solve(problem, anneal_time=15.0)
    elapsed = time.perf_counter() - start
    _RESULTS["annealing_ratio"] = {
        "num_nodes": num_nodes,
        "anneal_time": 15.0,
        "approximation_ratio": result.approximation_ratio,
        "success_probability": result.success_probability,
        "num_steps": result.num_steps,
        "solve_seconds": elapsed,
        "ratio_floor": _RATIO_FLOOR,
    }
    assert result.approximation_ratio >= _RATIO_FLOOR, result.approximation_ratio


def test_adaptive_vs_fixed_step_count(bench_smoke):
    """Adaptive RK45 needs >= 3x fewer steps than RK4 at matched accuracy.

    The smooth-schedule anneal spends most of its span in slowly-varying
    regions where the adaptive stepper stretches its step size; fixed-step
    RK4 must grid the whole span at the stiffest region's resolution.  The
    RK4 step count is scanned upward (doubling) until its final-state error
    first drops below the adaptive run's, then refined; the ratio of that
    matched step count to the adaptive count is the gated figure.
    """
    num_nodes = 6 if bench_smoke else 8
    horizon = 12.0
    generator, psi0 = _annealing_workload(num_nodes, horizon)
    reference = evolve(
        generator, psi0, times=horizon, rtol=1e-11, atol=1e-13
    ).final_state

    adaptive = evolve(generator, psi0, times=horizon, rtol=1e-7, atol=1e-9)
    adaptive_error = float(np.abs(adaptive.final_state - reference).max())

    def rk4_error(num_steps: int) -> float:
        fixed = evolve(
            generator, psi0, times=horizon, method="rk4", num_steps=num_steps
        )
        return float(np.abs(fixed.final_state - reference).max())

    matched_steps = 50
    while rk4_error(matched_steps) > adaptive_error:
        matched_steps *= 2
        if matched_steps > 1_000_000:  # pragma: no cover - safety valve
            pytest.fail("RK4 never matched the adaptive accuracy")
    step_ratio = matched_steps / adaptive.num_steps
    _RESULTS["adaptive_vs_fixed"] = {
        "num_nodes": num_nodes,
        "anneal_time": horizon,
        "adaptive_steps": adaptive.num_steps,
        "adaptive_rejected": adaptive.rejected_steps,
        "adaptive_error": adaptive_error,
        "rk4_matched_steps": matched_steps,
        "step_ratio": step_ratio,
        "step_ratio_floor": _STEP_RATIO_FLOOR,
        "floor_enforced": not bench_smoke,
    }
    if bench_smoke:
        assert step_ratio > 1.0, step_ratio
    else:
        assert step_ratio >= _STEP_RATIO_FLOOR, (step_ratio, _STEP_RATIO_FLOOR)


def test_structured_matvec_vs_dense_expm(bench_smoke):
    """Structured vec(rho) integration beats the dense ``expm`` oracle >= 5x.

    Both paths evolve the same dissipative generator; the dense oracle pays
    ``O(16^n)`` for the matrix exponential where the structured path pays
    per-step small-operator GEMM sweeps.  The dense superoperator is
    pre-built (cached) before timing, so the oracle's measured cost is the
    ``expm`` + matvec alone — the comparison the floor gates.
    """
    num_qubits = 4 if bench_smoke else 5
    rate, horizon = 0.2, 1.0
    problem = MaxCutProblem(erdos_renyi_graph(num_qubits, 0.6, seed=1))
    ham = Hamiltonian(problem.cost_hamiltonian())
    lind = Lindbladian.depolarizing(num_qubits, rate, hamiltonian=ham)
    dim = 1 << num_qubits
    rho0 = np.zeros((dim, dim), dtype=complex)
    rho0[0, 0] = 1.0

    structured_time = _best_of(
        3, lambda: evolve(lind, rho0, times=horizon, rtol=1e-8, atol=1e-10)
    )
    lind.superoperator()  # build + cache outside the timed region
    expm_time = _best_of(2, lambda: lind.expm_evolve(rho0, horizon))
    integrated = evolve(lind, rho0, times=horizon, rtol=1e-8, atol=1e-10)
    agreement = float(
        np.abs(
            integrated.final_state.reshape(dim, dim)
            - lind.expm_evolve(rho0, horizon)
        ).max()
    )
    speedup = expm_time / structured_time
    _RESULTS["structured_vs_expm"] = {
        "num_qubits": num_qubits,
        "rate": rate,
        "time": horizon,
        "structured_ms": structured_time * 1e3,
        "dense_expm_ms": expm_time * 1e3,
        "speedup": speedup,
        "speedup_floor": _MATVEC_SPEEDUP_FLOOR,
        "floor_enforced": not bench_smoke,
        "max_abs_diff": agreement,
    }
    assert agreement < 1e-6, agreement
    # At the smoke size (n = 4) the dense matrix is only 256 x 256 and expm
    # wins outright; the floor is meaningful (and enforced) at n = 5.
    if not bench_smoke:
        assert speedup >= _MATVEC_SPEEDUP_FLOOR, (speedup, _MATVEC_SPEEDUP_FLOOR)


def test_structured_path_scales_past_dense_ceiling(bench_smoke):
    """The structured path runs the issue's n = 8 workload the dense oracle
    cannot: the ``4^8 x 4^8`` superoperator alone would need ~68 GB, so only
    the structured timing is recorded (no dense baseline exists)."""
    if bench_smoke:
        pytest.skip("full-scale structured run is recorded in full mode only")
    num_qubits, rate, horizon = 8, 0.2, 0.5
    lind = Lindbladian.depolarizing(num_qubits, rate)
    dim = 1 << num_qubits
    rho0 = np.zeros((dim, dim), dtype=complex)
    rho0[0, 0] = 1.0
    start = time.perf_counter()
    result = evolve(lind, rho0, times=horizon, rtol=1e-6, atol=1e-8)
    elapsed = time.perf_counter() - start
    _RESULTS["structured_at_scale"] = {
        "num_qubits": num_qubits,
        "rate": rate,
        "time": horizon,
        "structured_seconds": elapsed,
        "num_steps": result.num_steps,
        "trace_drift": result.invariant_drift,
        "dense_baseline": (
            "infeasible: the 4^8 x 4^8 dense superoperator is ~68 GB"
        ),
    }
    assert result.invariant_drift < 1e-6
