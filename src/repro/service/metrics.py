"""Thread-safe service instrumentation with an injectable clock.

:class:`ServiceMetrics` is the single sink every service component reports
into: job lifecycle counters (submitted / completed / failed / cancelled),
cache hit rates for the compiled-program, solve-result and persistent
(on-disk) caches, coalescing statistics, a live queue-depth gauge, p50/p99
latency histograms for queue wait and end-to-end job latency, and the
resilience counters (faults injected by kind, circuit-breaker transitions
and rejections, checkpoint saves/resumes).  The clock is injectable
(``clock=lambda: fake_now``) so latency assertions in tests are exact
instead of sleep-based.

Examples
--------
>>> now = [0.0]
>>> metrics = ServiceMetrics(clock=lambda: now[0])
>>> metrics.job_submitted(); metrics.queue_depth_changed(1)
>>> now[0] = 0.25
>>> metrics.job_completed(latency=0.25, queue_wait=0.1)
>>> metrics.queue_depth_changed(-1)
>>> snapshot = metrics.to_dict()
>>> snapshot["jobs"]["completed"], snapshot["queue"]["depth"]
(1, 0)
>>> snapshot["latency"]["job_seconds"]["p50"]
0.25
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Optional

__all__ = ["LatencyHistogram", "ServiceMetrics"]


class LatencyHistogram:
    """A bounded reservoir of latency samples with percentile summaries.

    Keeps the most recent *capacity* samples (a deque), so long-running
    services report recent behaviour rather than an all-time average.  Not
    thread-safe on its own — :class:`ServiceMetrics` serialises access.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._samples: "deque[float]" = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def record(self, value: float) -> None:
        value = float(value)
        self._samples.append(value)
        self._count += 1
        self._total += value
        if value > self._max:
            self._max = value

    def percentile(self, q: float) -> Optional[float]:
        """The *q*-th percentile (0..100) of the retained samples."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        # Linear interpolation between closest ranks.
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> Dict[str, Optional[float]]:
        """Count / mean / max / p50 / p99 of the recorded latencies."""
        return {
            "count": self._count,
            "mean": (self._total / self._count) if self._count else None,
            "max": self._max if self._count else None,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
        }


class ServiceMetrics:
    """Counters, gauges and latency histograms for a :class:`SolverService`.

    All mutators are safe to call from any thread.  ``to_dict()`` takes one
    consistent snapshot under the same lock.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        histogram_capacity: int = 4096,
    ):
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at = clock()
        # Job lifecycle.
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._retries = 0
        self._timed_out = 0
        self._anneals = 0
        # Deduplication / coalescing.
        self._deduplicated = 0
        self._batches = 0
        self._batched_requests = 0
        self._largest_batch = 0
        # Caches.
        self._result_hits = 0
        self._result_misses = 0
        self._program_hits = 0
        self._program_misses = 0
        # Persistent (on-disk) result-cache tier.
        self._persistent_hits = 0
        self._persistent_misses = 0
        self._persistent_corruptions = 0
        self._persistent_writes = 0
        self._persistent_evictions = 0
        # Resilience: injected faults, breaker activity, checkpoints.
        self._faults_injected: Dict[str, int] = {}
        self._breaker_transitions: Dict[str, int] = {}
        self._breaker_rejections = 0
        # Per-backend breaker accounting (services running one breaker per
        # execution backend report under the backend's name here; the flat
        # counters above stay service-wide aggregates).
        self._breaker_backends: Dict[str, Dict[str, Any]] = {}
        self._checkpoint_saves = 0
        self._checkpoint_resumes = 0
        # Queue gauge.
        self._queue_depth = 0
        self._max_queue_depth = 0
        # Latencies (seconds).
        self._job_latency = LatencyHistogram(histogram_capacity)
        self._queue_wait = LatencyHistogram(histogram_capacity)
        self._run_time = LatencyHistogram(histogram_capacity)
        self._batch_flush_wait = LatencyHistogram(histogram_capacity)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current time on the injected clock (monotonic seconds)."""
        return self._clock()

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def job_submitted(self) -> None:
        with self._lock:
            self._submitted += 1

    def job_completed(
        self,
        latency: Optional[float] = None,
        queue_wait: Optional[float] = None,
        run_time: Optional[float] = None,
    ) -> None:
        with self._lock:
            self._completed += 1
            if latency is not None:
                self._job_latency.record(latency)
            if queue_wait is not None:
                self._queue_wait.record(queue_wait)
            if run_time is not None:
                self._run_time.record(run_time)

    def job_failed(self, timed_out: bool = False) -> None:
        with self._lock:
            self._failed += 1
            if timed_out:
                self._timed_out += 1

    def job_cancelled(self) -> None:
        with self._lock:
            self._cancelled += 1

    def job_retried(self) -> None:
        with self._lock:
            self._retries += 1

    def job_deduplicated(self) -> None:
        """A submission was absorbed by an identical in-flight job."""
        with self._lock:
            self._deduplicated += 1

    def anneal_submitted(self) -> None:
        """A continuous-time annealing job entered the service."""
        with self._lock:
            self._anneals += 1

    # ------------------------------------------------------------------
    # Coalescer
    # ------------------------------------------------------------------
    def batch_flushed(self, size: int, wait: Optional[float] = None) -> None:
        with self._lock:
            self._batches += 1
            self._batched_requests += int(size)
            if size > self._largest_batch:
                self._largest_batch = int(size)
            if wait is not None:
                self._batch_flush_wait.record(wait)

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def result_cache_hit(self) -> None:
        with self._lock:
            self._result_hits += 1

    def result_cache_miss(self) -> None:
        with self._lock:
            self._result_misses += 1

    def program_cache_hit(self) -> None:
        with self._lock:
            self._program_hits += 1

    def program_cache_miss(self) -> None:
        with self._lock:
            self._program_misses += 1

    def persistent_cache_hit(self) -> None:
        with self._lock:
            self._persistent_hits += 1

    def persistent_cache_miss(self) -> None:
        with self._lock:
            self._persistent_misses += 1

    def persistent_cache_corruption(self) -> None:
        """A persistent entry failed validation and was quarantined."""
        with self._lock:
            self._persistent_corruptions += 1

    def persistent_cache_write(self) -> None:
        with self._lock:
            self._persistent_writes += 1

    def persistent_cache_eviction(self) -> None:
        """A persistent entry was removed by the capacity or TTL policy."""
        with self._lock:
            self._persistent_evictions += 1

    # ------------------------------------------------------------------
    # Resilience
    # ------------------------------------------------------------------
    def fault_injected(self, kind: str) -> None:
        """A planned fault fired (counted per kind)."""
        with self._lock:
            self._faults_injected[kind] = self._faults_injected.get(kind, 0) + 1

    def _breaker_backend_locked(self, backend: str) -> Dict[str, Any]:
        entry = self._breaker_backends.get(backend)
        if entry is None:
            entry = {"transitions": {}, "rejections": 0}
            self._breaker_backends[backend] = entry
        return entry

    def breaker_transition(
        self, old_state: str, new_state: str, backend: Optional[str] = None
    ) -> None:
        """A circuit breaker changed state (counted per edge).

        With *backend* the edge is additionally attributed to that backend's
        per-backend section; the flat counter always aggregates.
        """
        edge = f"{old_state}->{new_state}"
        with self._lock:
            self._breaker_transitions[edge] = self._breaker_transitions.get(edge, 0) + 1
            if backend is not None:
                transitions = self._breaker_backend_locked(backend)["transitions"]
                transitions[edge] = transitions.get(edge, 0) + 1

    def breaker_rejected(self, backend: Optional[str] = None) -> None:
        """A job was shed because a breaker was open."""
        with self._lock:
            self._breaker_rejections += 1
            if backend is not None:
                self._breaker_backend_locked(backend)["rejections"] += 1

    def checkpoint_saved(self) -> None:
        with self._lock:
            self._checkpoint_saves += 1

    def checkpoint_resumed(self) -> None:
        with self._lock:
            self._checkpoint_resumes += 1

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------
    def queue_depth_changed(self, delta: int) -> None:
        with self._lock:
            self._queue_depth += int(delta)
            if self._queue_depth > self._max_queue_depth:
                self._max_queue_depth = self._queue_depth

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    @staticmethod
    def _hit_rate(hits: int, misses: int) -> Optional[float]:
        total = hits + misses
        return (hits / total) if total else None

    def to_dict(self) -> dict:
        """One consistent snapshot of every counter, gauge and histogram."""
        with self._lock:
            return {
                "uptime_seconds": self._clock() - self._started_at,
                "jobs": {
                    "submitted": self._submitted,
                    "completed": self._completed,
                    "failed": self._failed,
                    "cancelled": self._cancelled,
                    "timed_out": self._timed_out,
                    "retries": self._retries,
                    "deduplicated": self._deduplicated,
                    "anneals": self._anneals,
                },
                "coalescer": {
                    "batches": self._batches,
                    "batched_requests": self._batched_requests,
                    "largest_batch": self._largest_batch,
                    "mean_batch_size": (
                        self._batched_requests / self._batches if self._batches else None
                    ),
                },
                "caches": {
                    "result": {
                        "hits": self._result_hits,
                        "misses": self._result_misses,
                        "hit_rate": self._hit_rate(self._result_hits, self._result_misses),
                    },
                    "program": {
                        "hits": self._program_hits,
                        "misses": self._program_misses,
                        "hit_rate": self._hit_rate(self._program_hits, self._program_misses),
                    },
                    "persistent": {
                        "hits": self._persistent_hits,
                        "misses": self._persistent_misses,
                        "corruptions": self._persistent_corruptions,
                        "writes": self._persistent_writes,
                        "evictions": self._persistent_evictions,
                        "hit_rate": self._hit_rate(
                            self._persistent_hits, self._persistent_misses
                        ),
                    },
                },
                "resilience": {
                    "faults_injected": {
                        "total": sum(self._faults_injected.values()),
                        "by_kind": dict(sorted(self._faults_injected.items())),
                    },
                    "breaker": {
                        "transitions": dict(sorted(self._breaker_transitions.items())),
                        "rejections": self._breaker_rejections,
                        "per_backend": {
                            backend: {
                                "transitions": dict(sorted(entry["transitions"].items())),
                                "rejections": entry["rejections"],
                            }
                            for backend, entry in sorted(self._breaker_backends.items())
                        },
                    },
                    "checkpoints": {
                        "saved": self._checkpoint_saves,
                        "resumed": self._checkpoint_resumes,
                    },
                },
                "queue": {
                    "depth": self._queue_depth,
                    "max_depth": self._max_queue_depth,
                },
                "latency": {
                    "job_seconds": self._job_latency.summary(),
                    "queue_wait_seconds": self._queue_wait.summary(),
                    "run_seconds": self._run_time.summary(),
                    "batch_flush_wait_seconds": self._batch_flush_wait.summary(),
                },
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ServiceMetrics(submitted={self._submitted}, "
                f"completed={self._completed}, failed={self._failed}, "
                f"cancelled={self._cancelled}, queue_depth={self._queue_depth})"
            )
