"""Benchmark: regenerate Fig. 1(c) — AR and FC distributions vs QAOA depth."""

from repro.experiments.figure1c import run_figure1c


def test_bench_figure1c(benchmark, bench_config, bench_context):
    result = benchmark.pedantic(
        lambda: run_figure1c(bench_config, bench_context), rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    ar_by_depth = result.ar_by_depth()
    fc_by_depth = result.fc_by_depth()
    depths = sorted(ar_by_depth)
    # Paper shape: the approximation ratio improves with depth while the
    # number of optimization-loop iterations grows.
    assert ar_by_depth[depths[-1]] > ar_by_depth[depths[0]]
    assert fc_by_depth[depths[-1]] > fc_by_depth[depths[0]]
    assert all(0.5 <= ar_by_depth[d] <= 1.0 + 1e-9 for d in depths)
