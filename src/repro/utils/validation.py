"""Small argument-validation helpers used across the package.

They raise built-in exception types (``ValueError`` / ``TypeError``) because
they guard programming errors at API boundaries rather than library failures.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


def check_positive_int(value: int, name: str) -> int:
    """Return *value* if it is a positive integer, else raise ``ValueError``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Return *value* if it is a non-negative integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_positive(value: Number, name: str) -> float:
    """Return *value* as float if it is strictly positive and finite."""
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_probability(value: Number, name: str) -> float:
    """Return *value* as float if it lies in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(value: Number, low: Number, high: Number, name: str) -> float:
    """Return *value* as float if it lies in the closed interval [low, high]."""
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_qubit_index(qubit: int, num_qubits: int, name: str = "qubit") -> int:
    """Validate a qubit index against the register size."""
    check_non_negative_int(qubit, name)
    if qubit >= num_qubits:
        raise ValueError(
            f"{name} index {qubit} out of range for a {num_qubits}-qubit register"
        )
    return qubit
