"""Gate matrix definitions.

All matrices are returned as fresh ``complex128`` NumPy arrays in the
computational basis.  Multi-qubit gate matrices are given with the *first*
qubit argument as the most-significant bit of the sub-space basis index
(i.e. ``CNOT`` applied to ``(control, target)`` flips the target when the
control bit is 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

_SQRT1_2 = 1.0 / math.sqrt(2.0)


# ---------------------------------------------------------------------------
# Fixed single-qubit gates
# ---------------------------------------------------------------------------

def identity_matrix() -> np.ndarray:
    """The 2x2 identity."""
    return np.eye(2, dtype=complex)


def x_matrix() -> np.ndarray:
    """Pauli-X (NOT)."""
    return np.array([[0, 1], [1, 0]], dtype=complex)


def y_matrix() -> np.ndarray:
    """Pauli-Y."""
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def z_matrix() -> np.ndarray:
    """Pauli-Z."""
    return np.array([[1, 0], [0, -1]], dtype=complex)


def h_matrix() -> np.ndarray:
    """Hadamard."""
    return _SQRT1_2 * np.array([[1, 1], [1, -1]], dtype=complex)


def s_matrix() -> np.ndarray:
    """Phase gate S = sqrt(Z)."""
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def sdg_matrix() -> np.ndarray:
    """Inverse phase gate."""
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def t_matrix() -> np.ndarray:
    """T gate (pi/8 gate)."""
    return np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)


def tdg_matrix() -> np.ndarray:
    """Inverse T gate."""
    return np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex)


# ---------------------------------------------------------------------------
# Parametric single-qubit rotations
# ---------------------------------------------------------------------------

def rx_matrix(theta: float) -> np.ndarray:
    """Rotation about the X axis: ``exp(-i theta X / 2)``."""
    half = theta / 2.0
    return np.array(
        [[math.cos(half), -1j * math.sin(half)], [-1j * math.sin(half), math.cos(half)]],
        dtype=complex,
    )


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation about the Y axis: ``exp(-i theta Y / 2)``."""
    half = theta / 2.0
    return np.array(
        [[math.cos(half), -math.sin(half)], [math.sin(half), math.cos(half)]],
        dtype=complex,
    )


def rz_matrix(theta: float) -> np.ndarray:
    """Rotation about the Z axis: ``exp(-i theta Z / 2)``."""
    half = theta / 2.0
    return np.array(
        [[np.exp(-1j * half), 0], [0, np.exp(1j * half)]], dtype=complex
    )


def phase_matrix(theta: float) -> np.ndarray:
    """Phase gate ``diag(1, exp(i theta))``."""
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit rotation with three Euler angles."""
    half = theta / 2.0
    return np.array(
        [
            [math.cos(half), -np.exp(1j * lam) * math.sin(half)],
            [np.exp(1j * phi) * math.sin(half), np.exp(1j * (phi + lam)) * math.cos(half)],
        ],
        dtype=complex,
    )


# ---------------------------------------------------------------------------
# Two-qubit gates
# ---------------------------------------------------------------------------

def cnot_matrix() -> np.ndarray:
    """Controlled-NOT with the first qubit as control."""
    return np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    )


def cz_matrix() -> np.ndarray:
    """Controlled-Z."""
    return np.diag([1, 1, 1, -1]).astype(complex)


def swap_matrix() -> np.ndarray:
    """SWAP gate."""
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    )


def crz_matrix(theta: float) -> np.ndarray:
    """Controlled-RZ with the first qubit as control."""
    matrix = np.eye(4, dtype=complex)
    matrix[2, 2] = np.exp(-1j * theta / 2.0)
    matrix[3, 3] = np.exp(1j * theta / 2.0)
    return matrix


def rzz_matrix(theta: float) -> np.ndarray:
    """Two-qubit ZZ rotation ``exp(-i theta Z (x) Z / 2)``."""
    phase = np.exp(-1j * theta / 2.0)
    conj = np.exp(1j * theta / 2.0)
    return np.diag([phase, conj, conj, phase]).astype(complex)


def rxx_matrix(theta: float) -> np.ndarray:
    """Two-qubit XX rotation ``exp(-i theta X (x) X / 2)``."""
    cos = math.cos(theta / 2.0)
    sin = -1j * math.sin(theta / 2.0)
    matrix = np.zeros((4, 4), dtype=complex)
    for index in range(4):
        matrix[index, index] = cos
        matrix[index, index ^ 3] = sin
    return matrix


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GateDefinition:
    """Metadata describing one gate type."""

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[..., np.ndarray]
    self_inverse: bool = False
    inverse_name: str = None
    negate_params_on_inverse: bool = False
    diagonal: bool = False
    #: Name used when exporting to OpenQASM (``None`` = same as ``name``).
    qasm_name: str = None


def _definition(
    name: str,
    num_qubits: int,
    num_params: int,
    matrix_fn: Callable[..., np.ndarray],
    *,
    self_inverse: bool = False,
    inverse_name: str = None,
    negate_params_on_inverse: bool = False,
    diagonal: bool = False,
) -> Tuple[str, GateDefinition]:
    return name, GateDefinition(
        name=name,
        num_qubits=num_qubits,
        num_params=num_params,
        matrix_fn=matrix_fn,
        self_inverse=self_inverse,
        inverse_name=inverse_name,
        negate_params_on_inverse=negate_params_on_inverse,
        diagonal=diagonal,
    )


GATE_REGISTRY: Dict[str, GateDefinition] = dict(
    [
        _definition("id", 1, 0, identity_matrix, self_inverse=True, diagonal=True),
        _definition("x", 1, 0, x_matrix, self_inverse=True),
        _definition("y", 1, 0, y_matrix, self_inverse=True),
        _definition("z", 1, 0, z_matrix, self_inverse=True, diagonal=True),
        _definition("h", 1, 0, h_matrix, self_inverse=True),
        _definition("s", 1, 0, s_matrix, inverse_name="sdg", diagonal=True),
        _definition("sdg", 1, 0, sdg_matrix, inverse_name="s", diagonal=True),
        _definition("t", 1, 0, t_matrix, inverse_name="tdg", diagonal=True),
        _definition("tdg", 1, 0, tdg_matrix, inverse_name="t", diagonal=True),
        _definition("rx", 1, 1, rx_matrix, negate_params_on_inverse=True),
        _definition("ry", 1, 1, ry_matrix, negate_params_on_inverse=True),
        _definition("rz", 1, 1, rz_matrix, negate_params_on_inverse=True, diagonal=True),
        _definition("p", 1, 1, phase_matrix, negate_params_on_inverse=True, diagonal=True),
        _definition("u3", 1, 3, u3_matrix),
        _definition("cx", 2, 0, cnot_matrix, self_inverse=True),
        _definition("cz", 2, 0, cz_matrix, self_inverse=True, diagonal=True),
        _definition("swap", 2, 0, swap_matrix, self_inverse=True),
        _definition("crz", 2, 1, crz_matrix, negate_params_on_inverse=True, diagonal=True),
        _definition("rzz", 2, 1, rzz_matrix, negate_params_on_inverse=True, diagonal=True),
        _definition("rxx", 2, 1, rxx_matrix, negate_params_on_inverse=True),
    ]
)


#: Phase-angle decomposition of every diagonal gate: the gate's matrix is
#: ``diag(exp(i * (const + coeff * theta)))`` over its ``2^k``-dimensional
#: sub-space basis, with ``theta`` the (single) gate parameter and ``coeff``
#: ``None`` for parameter-free gates.  Every registry gate whose angle is
#: affine in its parameter belongs here; the compiled execution engine uses
#: this table to fuse runs of diagonal gates into a single phase vector.
DIAGONAL_ANGLES: Dict[str, Tuple[Tuple[float, ...], "Tuple[float, ...] | None"]] = {
    "id": ((0.0, 0.0), None),
    "z": ((0.0, math.pi), None),
    "s": ((0.0, math.pi / 2.0), None),
    "sdg": ((0.0, -math.pi / 2.0), None),
    "t": ((0.0, math.pi / 4.0), None),
    "tdg": ((0.0, -math.pi / 4.0), None),
    "rz": ((0.0, 0.0), (-0.5, 0.5)),
    "p": ((0.0, 0.0), (0.0, 1.0)),
    "cz": ((0.0, 0.0, 0.0, math.pi), None),
    "crz": ((0.0, 0.0, 0.0, 0.0), (0.0, 0.0, -0.5, 0.5)),
    "rzz": ((0.0, 0.0, 0.0, 0.0), (-0.5, 0.5, 0.5, -0.5)),
}


# Keep the two sources of truth in sync at import time: a gate flagged
# diagonal without an angle decomposition (or vice versa) would otherwise
# only surface as a bare KeyError on first compile.
assert {
    name for name, definition in GATE_REGISTRY.items() if definition.diagonal
} == set(DIAGONAL_ANGLES), "GATE_REGISTRY diagonal flags and DIAGONAL_ANGLES disagree"


def diagonal_angles(name: str) -> Tuple[np.ndarray, "np.ndarray | None"]:
    """Return ``(const, coeff)`` angle vectors of diagonal gate *name*.

    The gate's unitary is ``diag(exp(i * (const + coeff * theta)))``; *coeff*
    is ``None`` for parameter-free gates.  Raises :class:`KeyError` for gates
    that are not diagonal in the computational basis.
    """
    const, coeff = DIAGONAL_ANGLES[name]
    return (
        np.asarray(const, dtype=float),
        None if coeff is None else np.asarray(coeff, dtype=float),
    )


def qasm_gate_name(name: str) -> str:
    """The OpenQASM spelling of registry gate *name* (used by the exporter)."""
    try:
        definition = GATE_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown gate {name!r}") from exc
    return definition.qasm_name or definition.name


def gate_matrix(name: str, *params: float) -> np.ndarray:
    """Return the unitary matrix of gate *name* evaluated at *params*."""
    try:
        definition = GATE_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown gate {name!r}") from exc
    if len(params) != definition.num_params:
        raise ValueError(
            f"gate {name!r} takes {definition.num_params} parameter(s), "
            f"got {len(params)}"
        )
    return definition.matrix_fn(*params)
