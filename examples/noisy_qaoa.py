"""QAOA against a realistic oracle: finite shots and depolarizing noise.

The paper's cost model counts quantum-circuit evaluations; this example shows
what each of those evaluations actually costs on a NISQ device by re-running
the optimization loop with a finite shot budget and a depolarizing noise
model, then printing how much approximation ratio is lost relative to the
exact-oracle baseline.  Run with::

    python examples/noisy_qaoa.py

Set ``EXAMPLES_SMOKE=1`` to shrink every size for the CI smoke job.
"""

import os

from repro.execution import ExecutionContext
from repro.graphs import MaxCutProblem, erdos_renyi_graph
from repro.qaoa import ExpectationEvaluator, QAOASolver
from repro.quantum import NoiseModel
from repro.utils.tables import Table

SMOKE = os.environ.get("EXAMPLES_SMOKE") == "1"


def main() -> None:
    problem = MaxCutProblem(erdos_renyi_graph(8, 0.5, seed=7))
    depth = 2
    print(f"Problem: {problem.name}, depth p={depth}, "
          f"exact optimum {problem.max_cut_value():.1f}")

    # Exact-oracle baseline: noiseless L-BFGS-B, the flow used everywhere
    # else in this repository.
    exact_solver = QAOASolver("L-BFGS-B", seed=1)
    baseline = exact_solver.solve(problem, depth, seed=11)
    print(
        f"\nExact oracle    : AR = {baseline.approximation_ratio:.4f} "
        f"({baseline.optimizer_name}, {baseline.num_function_calls} evaluations, "
        f"0 shots)"
    )

    # The exact evaluator re-scores the angles each noisy run returns, so the
    # table reports the true quality of the optimization outcome.
    exact_evaluator = ExpectationEvaluator(problem, depth)

    shot_budgets = (128, 1024) if SMOKE else (128, 1024, 8192)
    noise_strengths = (0.0, 0.02) if SMOKE else (0.0, 0.005, 0.02)
    trajectories = 2 if SMOKE else 8

    table = Table(["shots", "depol_1q", "true_ar", "ar_loss", "fc", "total_shots"])
    for noise_1q in noise_strengths:
        noise_model = (
            NoiseModel.uniform_depolarizing(noise_1q) if noise_1q > 0 else None
        )
        for shots in shot_budgets:
            # One ExecutionContext describes the whole oracle; no
            # optimizer named, so the solver wires in SPSA for the
            # stochastic oracle automatically.
            solver = QAOASolver(
                context=ExecutionContext(
                    shots=shots,
                    noise_model=noise_model,
                    trajectories=trajectories,
                ),
                max_iterations=100 if SMOKE else 200,
                seed=2,
            )
            result = solver.solve(problem, depth, seed=11)
            true_ar = problem.approximation_ratio(
                exact_evaluator.expectation(result.optimal_parameters.to_vector())
            )
            table.add_row(
                shots=shots,
                depol_1q=noise_1q,
                true_ar=true_ar,
                ar_loss=baseline.approximation_ratio - true_ar,
                fc=result.num_function_calls,
                total_shots=result.num_shots,
            )

    print("\nStochastic oracle (SPSA; angles re-scored with the exact evaluator):")
    print(table.to_text())
    print(
        "\nReading guide: ar_loss > 0 is approximation ratio forfeited to the "
        "finite shot budget\nand/or gate noise; total_shots = shots x function "
        "calls is the physical cost the\npaper's function-call reduction "
        "ultimately saves."
    )


if __name__ == "__main__":
    main()
