"""Fast MaxCut-specialised QAOA statevector evaluation.

Inside the optimization loop the same circuit structure is evaluated thousands
of times, so this backend exploits the structure of the MaxCut QAOA ansatz
instead of applying gates one by one:

* the phase-separation unitary ``exp(-i gamma H_C)`` is diagonal in the
  computational basis (the diagonal is the cut-value table), and
* the mixing unitary ``exp(-i beta sum_q X_q)`` is diagonal in the Hadamard
  basis, so it is applied as ``W diag(exp(-i beta (n - 2 popcount))) W`` with
  ``W`` the normalised Walsh-Hadamard transform.

The result is numerically identical (up to global phase) to running the
gate-level circuit through :class:`~repro.quantum.simulator.StatevectorSimulator`,
which the test-suite verifies, but an order of magnitude faster.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.graphs.maxcut import MaxCutProblem
from repro.qaoa.parameters import QAOAParameters
from repro.quantum.statevector import Statevector


def _walsh_hadamard_matrix(num_qubits: int) -> np.ndarray:
    """The normalised ``H^{(x) n}`` matrix: ``W[i, j] = (-1)^popcount(i & j) / sqrt(N)``."""
    size = 2**num_qubits
    indices = np.arange(size)
    parity = np.zeros((size, size), dtype=np.int64)
    overlap = indices[:, None] & indices[None, :]
    # popcount of every entry of the overlap matrix
    value = overlap.copy()
    while value.any():
        parity += value & 1
        value >>= 1
    return ((-1.0) ** (parity % 2)) / math.sqrt(size)


class FastMaxCutEvaluator:
    """Evaluate QAOA states and cost expectations for one MaxCut problem."""

    def __init__(self, problem: MaxCutProblem, max_qubits: int = 20):
        if problem.num_qubits > max_qubits:
            raise SimulationError(
                f"problem has {problem.num_qubits} qubits, exceeding the fast-backend "
                f"limit of {max_qubits}"
            )
        self._problem = problem
        self._num_qubits = problem.num_qubits
        self._dim = 2**self._num_qubits
        self._cost_diagonal = problem.cost_diagonal()
        self._hadamard = _walsh_hadamard_matrix(self._num_qubits)
        indices = np.arange(self._dim)
        popcounts = np.zeros(self._dim, dtype=float)
        value = indices.copy()
        while value.any():
            popcounts += value & 1
            value >>= 1
        # Eigenvalues of sum_q X_q in the Hadamard-transformed basis.
        self._mixer_diagonal = self._num_qubits - 2.0 * popcounts
        self._num_evaluations = 0

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def problem(self) -> MaxCutProblem:
        """The MaxCut problem this evaluator is specialised for."""
        return self._problem

    @property
    def num_evaluations(self) -> int:
        """Number of expectation evaluations performed (diagnostic counter)."""
        return self._num_evaluations

    @property
    def cost_diagonal(self) -> np.ndarray:
        """Diagonal of the cost Hamiltonian (copy)."""
        return self._cost_diagonal.copy()

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def _walsh_hadamard_apply(self, amplitudes: np.ndarray) -> np.ndarray:
        """Apply the normalised Walsh-Hadamard transform to a complex vector.

        The complex vector is viewed as a ``(dim, 2)`` real matrix so the
        transform is a single real matrix product (avoiding a complex upcast
        of the Hadamard matrix on every call).
        """
        stacked = np.empty((self._dim, 2), dtype=float)
        stacked[:, 0] = amplitudes.real
        stacked[:, 1] = amplitudes.imag
        transformed = self._hadamard @ stacked
        return np.ascontiguousarray(transformed).view(np.complex128).ravel()

    def statevector(self, parameters: QAOAParameters) -> Statevector:
        """The QAOA output state ``|psi(gamma, beta)>``."""
        if not isinstance(parameters, QAOAParameters):
            parameters = QAOAParameters.from_vector(np.asarray(parameters, dtype=float))
        amplitudes = np.full(self._dim, 1.0 / math.sqrt(self._dim), dtype=complex)
        for gamma, beta in zip(parameters.gammas, parameters.betas):
            amplitudes *= np.exp(-1j * gamma * self._cost_diagonal)
            amplitudes = self._walsh_hadamard_apply(amplitudes)
            amplitudes *= np.exp(-1j * beta * self._mixer_diagonal)
            amplitudes = self._walsh_hadamard_apply(amplitudes)
        return Statevector(amplitudes, copy=False, validate=False)

    def expectation(self, parameters) -> float:
        """Expectation value of the cost Hamiltonian in the QAOA state."""
        state = self.statevector(parameters)
        self._num_evaluations += 1
        return float(np.dot(np.abs(state.data) ** 2, self._cost_diagonal))

    def approximation_ratio(self, parameters) -> float:
        """Approximation ratio of the QAOA state at the given angles."""
        return self._problem.approximation_ratio(self.expectation(parameters))

    def sample_cut_distribution(self, parameters, shots: int, rng=None) -> dict:
        """Sample measurement outcomes and report cut values per bit-string."""
        state = self.statevector(parameters)
        counts = state.sample_counts(shots, rng=rng)
        return {
            bitstring: {
                "count": count,
                "cut_value": self._problem.cut_value(bitstring),
            }
            for bitstring, count in counts.items()
        }
