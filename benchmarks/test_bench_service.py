"""Load benchmarks of the solver service tier.

Measures the three service-layer wins over the seed's one-solve-at-a-time
usage pattern:

* **Concurrent submission throughput** — >= 64 submissions of a repeated
  (graph, depth, context, seed) workload pushed through the service's
  dedup + result cache versus the same workload solved serially, one
  fresh solver call per request;
* **Warm result-cache latency** — resubmitting an already-solved
  configuration versus the cold solve;
* **Expectation coalescing** — a burst of concurrent scalar expectation
  requests batched into vectorized sweeps versus fresh per-request
  evaluator construction.

Every measurement is appended to ``BENCH_service.json`` in the repository
root together with the service's own ``ServiceMetrics.to_dict()`` snapshot
(cache hit rates, p50/p99 latencies), so the performance trajectory is
machine-readable from this PR on (CI uploads the file as an artifact).
"""

import json
import platform
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.maxcut import MaxCutProblem
from repro.qaoa.cost import ExpectationEvaluator
from repro.qaoa.solver import QAOASolver
from repro.service import SolverService

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json(bench_smoke):
    """Write every recorded measurement to ``BENCH_service.json``."""
    yield
    payload = {
        "benchmark": "service",
        "smoke": bool(bench_smoke),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": _RESULTS,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _problems(count: int) -> list:
    return [
        MaxCutProblem(erdos_renyi_graph(8, 0.5, seed=seed)) for seed in range(count)
    ]


def test_concurrent_submission_throughput(bench_smoke):
    """Headline: >= 64 concurrent repeated submissions vs serial solving.

    The workload repeats a small set of (graph, depth, seed) configurations
    many times — the regime the service is built for (parameter sweeps,
    dashboards, several clients asking overlapping questions).  The serial
    baseline solves every request independently, the seed's usage pattern;
    the service deduplicates identical in-flight submissions and serves
    repeats from the result cache, so only the unique configurations cost a
    real solve.
    """
    num_unique, repeats = (4, 8) if bench_smoke else (8, 8)
    num_submissions = num_unique * repeats
    assert bench_smoke or num_submissions >= 64
    depth = 1
    problems = _problems(num_unique)
    workload = [(problems[i % num_unique], 17 + (i % num_unique)) for i in range(num_submissions)]

    # Serial baseline: one fresh solver call per request.
    start = time.perf_counter()
    serial_values = [
        QAOASolver(seed=0).solve(problem, depth, seed=seed).optimal_expectation
        for problem, seed in workload
    ]
    serial_seconds = time.perf_counter() - start

    # Service: all submissions in flight at once.
    with SolverService(max_workers=4) as service:
        start = time.perf_counter()
        handles = [
            service.submit(problem, depth, seed=seed) for problem, seed in workload
        ]
        service_values = [h.result(timeout=300).optimal_expectation for h in handles]
        service_seconds = time.perf_counter() - start
        snapshot = service.metrics.to_dict()

    # Identical numbers, dramatically less work.
    assert service_values == serial_values
    speedup = serial_seconds / service_seconds
    _RESULTS["concurrent_submissions"] = {
        "num_submissions": num_submissions,
        "num_unique_configurations": num_unique,
        "serial_seconds": serial_seconds,
        "service_seconds": service_seconds,
        "speedup": speedup,
        "jobs": snapshot["jobs"],
        "result_cache": snapshot["caches"]["result"],
        "latency_p50_seconds": snapshot["latency"]["job_seconds"]["p50"],
        "latency_p99_seconds": snapshot["latency"]["job_seconds"]["p99"],
    }
    # Only `num_unique` real solves happened for `num_submissions` requests.
    served_cheaply = (
        snapshot["jobs"]["deduplicated"] + snapshot["caches"]["result"]["hits"]
    )
    assert served_cheaply >= num_submissions - num_unique
    floor = 2.0 if bench_smoke else 5.0
    assert speedup >= floor, (
        f"coalesced throughput speedup {speedup:.1f}x below the {floor}x floor "
        f"(serial {serial_seconds:.3f}s vs service {service_seconds:.3f}s)"
    )


def test_warm_result_cache_latency(bench_smoke):
    """A warm resubmission must be at least 10x faster than the cold solve."""
    problem = MaxCutProblem(erdos_renyi_graph(8, 0.5, seed=31))
    depth = 1 if bench_smoke else 2
    with SolverService(max_workers=2) as service:
        start = time.perf_counter()
        cold = service.submit(problem, depth, seed=5)
        cold_result = cold.result(timeout=300)
        cold_seconds = time.perf_counter() - start

        warm_seconds = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            warm = service.submit(problem, depth, seed=5)
            warm_result = warm.result(timeout=10)
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
        assert warm.from_cache
        assert warm_result is cold_result
        hit_rate = service.metrics.to_dict()["caches"]["result"]["hit_rate"]

    speedup = cold_seconds / warm_seconds
    _RESULTS["warm_result_cache"] = {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "result_cache_hit_rate": hit_rate,
    }
    assert speedup >= 10.0, (
        f"warm cache hit only {speedup:.1f}x faster than the cold solve "
        f"({warm_seconds * 1e6:.0f}us vs {cold_seconds * 1e3:.1f}ms)"
    )


def test_expectation_coalescing_throughput(bench_smoke):
    """A concurrent burst of expectation requests vs per-request evaluation.

    The serial baseline mirrors a service with no coalescing and no program
    cache: every request builds its own evaluator (one backend compile) and
    evaluates one scalar expectation.  The coalesced path shares one
    compiled program and sweeps concurrent requests through
    ``expectation_batch`` in a handful of flushes.
    """
    num_requests = 32 if bench_smoke else 64
    problem = MaxCutProblem(erdos_renyi_graph(8, 0.5, seed=11))
    depth = 2
    rng = np.random.default_rng(7)
    vectors = rng.uniform(0.0, np.pi, size=(num_requests, 2 * depth))

    start = time.perf_counter()
    serial_values = [
        ExpectationEvaluator(problem, depth).expectation(vector) for vector in vectors
    ]
    serial_seconds = time.perf_counter() - start

    with SolverService(max_workers=4, coalesce_max_wait_ms=20.0) as service:
        values = [None] * num_requests
        # The main thread joins the barrier so the clock starts at the moment
        # the burst is released, excluding thread spawn overhead.
        barrier = threading.Barrier(num_requests + 1)

        def request(index):
            barrier.wait(30)
            values[index] = service.expectation(
                problem, depth, vectors[index], timeout=60
            )

        threads = [
            threading.Thread(target=request, args=(i,)) for i in range(num_requests)
        ]
        for thread in threads:
            thread.start()
        barrier.wait(30)
        start = time.perf_counter()
        for thread in threads:
            thread.join(60)
        coalesced_seconds = time.perf_counter() - start
        snapshot = service.metrics.to_dict()

    np.testing.assert_allclose(values, serial_values, rtol=0, atol=1e-12)
    speedup = serial_seconds / coalesced_seconds
    _RESULTS["expectation_coalescing"] = {
        "num_requests": num_requests,
        "serial_seconds": serial_seconds,
        "coalesced_seconds": coalesced_seconds,
        "speedup": speedup,
        "batches": snapshot["coalescer"]["batches"],
        "largest_batch": snapshot["coalescer"]["largest_batch"],
        "mean_batch_size": snapshot["coalescer"]["mean_batch_size"],
        "program_cache": snapshot["caches"]["program"],
    }
    # Requests were genuinely batched, not evaluated one by one.
    assert snapshot["coalescer"]["batched_requests"] == num_requests
    assert snapshot["coalescer"]["largest_batch"] > 1


def test_metrics_snapshot_shape(bench_smoke):
    """Record a full mixed-workload metrics snapshot for the artifact."""
    problems = _problems(3)
    with SolverService(max_workers=2) as service:
        handles = [
            service.submit(problems[i % 3], 1, seed=i % 3) for i in range(12)
        ]
        for handle in handles:
            handle.result(timeout=300)
        for _ in range(4):
            service.expectation(problems[0], 1, [0.3, 0.2], timeout=30)
        snapshot = service.metrics.to_dict()
    _RESULTS["metrics_snapshot"] = snapshot
    assert snapshot["jobs"]["completed"] >= 3
    assert snapshot["latency"]["job_seconds"]["p50"] is not None
    assert snapshot["latency"]["job_seconds"]["p99"] is not None
    assert snapshot["caches"]["result"]["hit_rate"] is not None
