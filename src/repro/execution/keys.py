"""Stable content hashing for execution configurations, graphs and solves.

The service tier (:mod:`repro.service`) keys its compiled-program and
solve-result caches on *content*, not object identity: two processes — or two
threads handed structurally equal objects — must derive the same key for the
same work.  This module provides the canonicalization and hashing primitives
behind those keys:

* :func:`canonical_payload` — recursively normalises a JSON-ish payload
  (sorted mapping keys, tuples to lists, NumPy scalars to Python numbers,
  floats through their shortest-``repr`` canonical form);
* :func:`stable_hash` — SHA-256 of the canonical JSON encoding, truncated to
  a 16-byte hex digest.  Unlike ``hash()``, it is stable across processes
  (no ``PYTHONHASHSEED`` dependence) and across runs;
* :func:`graph_cache_key` / :func:`problem_cache_key` — content hash of a
  graph / MaxCut problem (name excluded: two structurally identical graphs
  with different labels are the same work);
* :func:`compile_cache_key` — the key under which compiled backend programs
  are shared: ``(graph, depth, backend, density)``;
* :func:`solve_cache_key` — the key under which finished solve results are
  cached: ``(graph, depth, full context content, seed, solver options)``.

Examples
--------
>>> from repro.execution.keys import stable_hash
>>> stable_hash({"b": 1, "a": 2.0}) == stable_hash({"a": 2.0, "b": 1})
True
>>> stable_hash([1.0]) != stable_hash([1])
True
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional

#: Hex digest length of every stable key (16 bytes of SHA-256).
KEY_HEX_DIGITS = 32


def canonical_payload(value: Any) -> Any:
    """Recursively normalise *value* into a canonical JSON-encodable form.

    Mappings are re-ordered by (string) key, sequences become lists, NumPy
    scalars collapse to their Python equivalents, and every float passes
    through Python's shortest-round-trip ``repr`` so the encoded byte stream
    is identical wherever the payload was produced.  Non-finite floats are
    encoded symbolically (``"nan"``/``"inf"``) because JSON has no literal
    for them.
    """
    if isinstance(value, Mapping):
        return {
            str(key): canonical_payload(value[key])
            for key in sorted(value, key=str)
        }
    if isinstance(value, (list, tuple)):
        return [canonical_payload(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        # bool checked before int: True must stay True, not become 1.
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return {"__float__": "nan"}
        if value in (float("inf"), float("-inf")):
            return {"__float__": "inf" if value > 0 else "-inf"}
        # float(repr(x)) == x in Python 3, so repr is the canonical form;
        # normalise -0.0 to 0.0 (they compare equal and denote the same
        # configuration) and collapse NumPy float subclasses to plain float.
        return float(value + 0.0)
    # NumPy scalars (and any other number-ish object) expose item()/float().
    item = getattr(value, "item", None)
    if callable(item):
        return canonical_payload(item())
    if isinstance(value, complex):
        return {"__complex__": [canonical_payload(value.real), canonical_payload(value.imag)]}
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for stable hashing"
    )


def canonical_json(value: Any) -> str:
    """The canonical JSON encoding of *value* (see :func:`canonical_payload`)."""
    return json.dumps(
        canonical_payload(value),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def stable_hash(value: Any) -> str:
    """A process-stable hex digest of *value*'s canonical JSON form."""
    digest = hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
    return digest[:KEY_HEX_DIGITS]


def graph_cache_key(graph) -> str:
    """Content hash of a :class:`~repro.graphs.model.Graph`.

    Keyed on structure only — node count and the sorted weighted edge list —
    so relabelled copies of the same graph share a key.
    """
    return stable_hash(
        {"num_nodes": graph.num_nodes, "edges": [list(edge) for edge in graph.edges]}
    )


def problem_cache_key(problem) -> str:
    """Content hash of a MaxCut problem (delegates to its graph).

    Prefers the problem's own cached :meth:`~repro.graphs.maxcut.MaxCutProblem.cache_key`
    when available so repeated solves on one instance hash the edge list once.
    """
    cached = getattr(problem, "cache_key", None)
    if callable(cached):
        return cached()
    return graph_cache_key(problem.graph)


def compile_cache_key(problem, depth: int, context) -> str:
    """The key under which compiled backend programs are shared.

    Programs depend only on circuit structure and execution target:
    ``(graph content, depth, backend, density)``.  Shots, noise and readout
    models bind at evaluation time and deliberately do not fragment the
    program cache.
    """
    return stable_hash(
        {
            "graph": problem_cache_key(problem),
            "depth": int(depth),
            "backend": context.backend,
            "density": bool(context.density),
        }
    )


def circuit_cache_key(circuit) -> str:
    """Content hash of a :class:`~repro.quantum.circuit.QuantumCircuit`.

    Keyed on register size and the full instruction stream; symbolic
    parameters are encoded by their first-appearance index (plus affine
    coefficients), so two structurally identical circuits built from
    differently-named parameters share a key.  Frontend IRs carry their own
    :meth:`~repro.frontend.ir.CircuitIR.cache_key` with the same property.
    """
    from repro.quantum.parameter import Parameter, ParameterExpression

    order = {parameter: index for index, parameter in enumerate(circuit.parameters)}

    def encode(param):
        if isinstance(param, Parameter):
            return {"param": order[param], "coeff": 1.0, "const": 0.0}
        if isinstance(param, ParameterExpression):
            return {
                "param": order[param.parameter],
                "coeff": param.coefficient,
                "const": param.constant,
            }
        return float(param)

    return stable_hash(
        {
            "num_qubits": circuit.num_qubits,
            "gates": [
                [
                    instruction.name,
                    list(instruction.qubits),
                    [encode(param) for param in instruction.params],
                ]
                for instruction in circuit.instructions
            ],
        }
    )


def observable_cache_key(observable) -> str:
    """Content hash of a :class:`~repro.quantum.operators.PauliSum`.

    Terms are sorted by label so construction order does not fragment the
    key; coefficients of repeated labels are merged first.
    """
    merged: dict = {}
    for coefficient, pauli in observable.terms:
        label = pauli.label
        merged[label] = merged.get(label, 0.0) + float(coefficient)
    return stable_hash(
        {
            "num_qubits": observable.num_qubits,
            "terms": sorted(merged.items()),
        }
    )


def anneal_cache_key(problem, schedule_payload: Any, options: Any = None) -> str:
    """The key under which finished annealing results are cached.

    Continuous-time anneals (:class:`~repro.dynamics.AnnealingSolver`) are
    deterministic — no seed enters the key.  It covers the graph content,
    the canonical schedule payload (``AnnealingSchedule.payload()``: kind,
    total time, control points) and an opaque *options* payload for solver
    settings (method, tolerances, dissipation, context).
    """
    return stable_hash(
        {
            "kind": "anneal-result",
            "graph": problem_cache_key(problem),
            "schedule": canonical_payload(schedule_payload),
            "options": canonical_payload(options),
        }
    )


def solve_cache_key(
    problem,
    depth: int,
    context,
    seed: Optional[int],
    options: Any = None,
) -> str:
    """The key under which finished solve results are cached.

    Covers everything a deterministic solve depends on: the graph content,
    the depth, the **full** execution context (via
    :meth:`~repro.execution.context.ExecutionContext.cache_key`), the integer
    seed, and an opaque *options* payload for solver-level settings
    (optimizer, restarts, ...).
    """
    return stable_hash(
        {
            "graph": problem_cache_key(problem),
            "depth": int(depth),
            "context": context.cache_key(),
            "seed": None if seed is None else int(seed),
            "options": canonical_payload(options),
        }
    )
