"""Construction of the MaxCut QAOA circuit at the gate level.

The circuit follows Fig. 1(a) of the paper: a layer of Hadamards prepares the
uniform superposition, then each of the ``p`` stages applies

* the phase-separation layer — for every edge ``(u, v)`` a CNOT / RZ / CNOT
  sandwich implementing ``exp(+i gamma w_uv Z_u Z_v / 2)`` (equal, up to a
  global phase, to ``exp(-i gamma H_C)`` for the MaxCut cost Hamiltonian), and
* the mixing layer — ``RX(2 beta)`` on every qubit, implementing
  ``exp(-i beta X_q)``.
"""

from __future__ import annotations

from typing import Tuple

from repro.exceptions import ConfigurationError
from repro.graphs.maxcut import MaxCutProblem
from repro.qaoa.parameters import QAOAParameters
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.parameter import ParameterVector


def build_maxcut_qaoa_circuit(
    problem: MaxCutProblem, parameters: QAOAParameters
) -> QuantumCircuit:
    """Build a fully-bound QAOA circuit for *problem* at the given angles."""
    circuit = QuantumCircuit(problem.num_qubits, name=f"qaoa_p{parameters.depth}")
    for qubit in range(problem.num_qubits):
        circuit.h(qubit)
    for stage in range(parameters.depth):
        gamma = parameters.gammas[stage]
        beta = parameters.betas[stage]
        _append_phase_separation(circuit, problem, gamma)
        _append_mixing(circuit, problem, beta)
    return circuit


def build_parametric_qaoa_circuit(
    problem: MaxCutProblem, depth: int
) -> Tuple[QuantumCircuit, ParameterVector, ParameterVector]:
    """Build a symbolic QAOA circuit; returns ``(circuit, gammas, betas)``.

    The returned parameter vectors can be bound later through
    :meth:`QuantumCircuit.bind` with a ``{parameter: value}`` mapping built
    from *gammas* and *betas*.  Note that binding by flat *sequence* follows
    :attr:`QuantumCircuit.parameters` first-appearance order, which
    interleaves ``gamma[k]``/``beta[k]`` stage by stage — use the mapping
    form (or a column permutation, as
    :class:`~repro.qaoa.cost.ExpectationEvaluator` does) rather than
    concatenating the vectors.
    """
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth}")
    gammas = ParameterVector("gamma", depth)
    betas = ParameterVector("beta", depth)
    circuit = QuantumCircuit(problem.num_qubits, name=f"qaoa_sym_p{depth}")
    for qubit in range(problem.num_qubits):
        circuit.h(qubit)
    for stage in range(depth):
        for u, v, weight in problem.graph.edges:
            circuit.cx(u, v)
            circuit.rz(gammas[stage] * (-weight), v)
            circuit.cx(u, v)
        for qubit in range(problem.num_qubits):
            circuit.rx(betas[stage] * 2.0, qubit)
    return circuit, gammas, betas


def _append_phase_separation(
    circuit: QuantumCircuit, problem: MaxCutProblem, gamma: float
) -> None:
    """Append one phase-separation layer ``exp(-i gamma H_C)`` (up to phase)."""
    for u, v, weight in problem.graph.edges:
        circuit.cx(u, v)
        circuit.rz(-gamma * weight, v)
        circuit.cx(u, v)


def _append_mixing(circuit: QuantumCircuit, problem: MaxCutProblem, beta: float) -> None:
    """Append one mixing layer ``exp(-i beta sum_q X_q)``."""
    for qubit in range(problem.num_qubits):
        circuit.rx(2.0 * beta, qubit)


def qaoa_gate_counts(problem: MaxCutProblem, depth: int) -> dict:
    """Gate-count summary of the depth-*depth* circuit (a NISQ cost proxy)."""
    num_edges = problem.graph.num_edges
    num_qubits = problem.num_qubits
    return {
        "h": num_qubits,
        "cx": 2 * num_edges * depth,
        "rz": num_edges * depth,
        "rx": num_qubits * depth,
        "total": num_qubits + depth * (3 * num_edges + num_qubits),
    }
