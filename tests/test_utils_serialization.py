"""Tests for repro.utils.serialization."""

import numpy as np
import pytest

from repro.utils.serialization import dumps_json, load_json, save_json


class TestDumpsJson:
    def test_handles_numpy_scalars(self):
        text = dumps_json({"a": np.int64(3), "b": np.float64(1.5), "c": np.bool_(True)})
        assert '"a": 3' in text
        assert '"b": 1.5' in text
        assert '"c": true' in text

    def test_handles_numpy_arrays(self):
        text = dumps_json({"v": np.array([1.0, 2.0])})
        assert "[" in text and "2.0" in text

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            dumps_json({"x": object()})


class TestSaveLoadRoundtrip:
    def test_roundtrip(self, tmp_path):
        payload = {"numbers": [1, 2, 3], "nested": {"pi": 3.14}}
        path = save_json(payload, tmp_path / "sub" / "data.json")
        assert path.exists()
        assert load_json(path) == payload

    def test_numpy_array_becomes_list(self, tmp_path):
        path = save_json({"v": np.arange(3)}, tmp_path / "v.json")
        assert load_json(path) == {"v": [0, 1, 2]}
