"""Resilience layer: deterministic chaos, retries, breakers, checkpoints.

Everything the service tier uses to survive (and *prove* it survives)
failures:

* :class:`~repro.resilience.faults.FaultPlan` /
  :class:`~repro.resilience.faults.FaultInjector` — seed-driven, replayable
  fault injection at the ``worker.run``, ``backend.evaluate`` and
  ``cache.read`` / ``cache.write`` boundaries;
* :class:`~repro.resilience.retry.RetryPolicy` — capped exponential backoff
  with seeded jitter and an injectable sleep;
* :class:`~repro.resilience.breaker.CircuitBreaker` — closed → open →
  half-open load shedding for a persistently failing backend;
* :class:`~repro.resilience.checkpoint.CheckpointStore` and friends —
  crash-safe solver snapshots enabling
  :meth:`~repro.qaoa.solver.QAOASolver.solve` resume-from-checkpoint;
* :mod:`~repro.resilience.storage` — the shared atomic-write /
  checksum / quarantine primitives behind every durable store.

See ``docs/reliability.md`` for the full fault model and guarantees.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.checkpoint import (
    CheckpointSlot,
    CheckpointStore,
    FileCheckpointStore,
    MemoryCheckpointStore,
    SolverCheckpoint,
)
from repro.resilience.faults import FAULT_KINDS, Fault, FaultInjector, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.resilience.storage import CorruptEntryError

__all__ = [
    "FAULT_KINDS",
    "CheckpointSlot",
    "CheckpointStore",
    "CircuitBreaker",
    "CorruptEntryError",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FileCheckpointStore",
    "MemoryCheckpointStore",
    "RetryPolicy",
    "SolverCheckpoint",
]
