"""Benchmarks of the FWHT evaluation engine against the dense-matrix oracle.

The pre-FWHT backend applied the mixing layer through an explicit
``2^n x 2^n`` Walsh-Hadamard matrix: ``O(4^n)`` time per layer and ``O(4^n)``
memory up front, which caps it near 14 qubits (the n = 16 matrix alone would
be 32 GiB of float64 — it cannot even be allocated, let alone multiplied).
The in-place butterfly is ``O(n 2^n)`` with ``O(2^n)`` memory, so the same
n = 16 evaluation that is *unrepresentable* densely completes in
milliseconds here, and at the largest dense-feasible sizes the measured
speed-up comfortably clears 10x.
"""

import time

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.maxcut import MaxCutProblem
from repro.qaoa.fast_backend import DenseMaxCutEvaluator, FastMaxCutEvaluator
from repro.qaoa.parameters import random_parameters


def _problem(num_nodes: int) -> MaxCutProblem:
    return MaxCutProblem(erdos_renyi_graph(num_nodes, 0.3, seed=num_nodes))


def _best_of(repeats: int, func) -> float:
    """Minimum wall-clock of *repeats* calls (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_fwht_expectation_n16(benchmark):
    """One expectation at n = 16 — beyond the dense oracle's reach entirely."""
    evaluator = FastMaxCutEvaluator(_problem(16))
    vector = random_parameters(2, 0).to_vector()
    value = benchmark(evaluator.expectation, vector)
    assert 0.0 <= value <= evaluator.problem.max_cut_value() + 1e-9


def test_bench_expectation_batch_n12(benchmark, bench_smoke):
    """A whole batch of angle sets through one vectorized FWHT sweep."""
    evaluator = FastMaxCutEvaluator(_problem(10 if bench_smoke else 12))
    matrix = np.array(
        [random_parameters(2, seed).to_vector() for seed in range(32)]
    )
    values = benchmark(evaluator.expectation_batch, matrix)
    assert values.shape == (32,)


def test_dense_oracle_unrepresentable_at_n16():
    """The n = 16 dense transform (32 GiB) is refused outright."""
    with pytest.raises(SimulationError):
        DenseMaxCutEvaluator(_problem(16))


def test_fwht_speedup_over_dense(bench_smoke):
    """Measured speed-up at the largest dense-feasible size.

    The dense path scales as O(4^n) per layer, so the measured ratio here is
    a *lower bound* on the n = 16 advantage (where dense is not allocatable
    at all): every +1 qubit multiplies the dense cost by 4 but the FWHT cost
    by ~2.
    """
    num_nodes = 10 if bench_smoke else 12
    problem = _problem(num_nodes)
    fast = FastMaxCutEvaluator(problem)
    dense = DenseMaxCutEvaluator(problem)
    vectors = [random_parameters(2, seed).to_vector() for seed in range(4)]

    def run_fast():
        for vector in vectors:
            fast.expectation(vector)

    def run_dense():
        for vector in vectors:
            dense.expectation(vector)

    run_fast(), run_dense()  # warm-up (buffer allocation, BLAS thread spin-up)
    fast_time = _best_of(3, run_fast)
    dense_time = _best_of(3, run_dense)
    speedup = dense_time / fast_time
    # Floors sit far below the typically observed ratios (~7x at n=10, ~50x
    # at n=12 on an idle machine) so a loaded shared CI runner cannot flake
    # the smoke gate; the asymptotic gap grows by 2x per added qubit.
    floor = 2.0 if bench_smoke else 10.0
    assert speedup >= floor, (
        f"FWHT should be >={floor}x faster than the dense path at n={num_nodes}, "
        f"measured {speedup:.1f}x ({dense_time*1e3:.2f} ms vs {fast_time*1e3:.2f} ms)"
    )


def test_batch_faster_than_scalar_loop(bench_smoke):
    """Batched evaluation amortises per-call overhead over the whole matrix."""
    evaluator = FastMaxCutEvaluator(_problem(8 if bench_smoke else 10))
    matrix = np.array([random_parameters(2, seed).to_vector() for seed in range(64)])

    def run_batch():
        evaluator.expectation_batch(matrix)

    def run_loop():
        for row in matrix:
            evaluator.expectation(row)

    run_batch(), run_loop()  # warm-up
    batch_time = _best_of(3, run_batch)
    loop_time = _best_of(3, run_loop)
    # Smoke mode tolerates scheduler noise on shared runners; the full
    # harness demands an outright win.
    slack = 1.5 if bench_smoke else 1.0
    assert batch_time < loop_time * slack, (
        f"batched evaluation should beat the scalar loop, got "
        f"{batch_time*1e3:.2f} ms vs {loop_time*1e3:.2f} ms"
    )


def test_fast_and_dense_agree(bench_smoke):
    """The two implementations are numerically interchangeable (1e-10)."""
    problem = _problem(8)
    fast = FastMaxCutEvaluator(problem)
    dense = DenseMaxCutEvaluator(problem)
    rng = np.random.default_rng(3)
    for depth in (1, 3):
        parameters = random_parameters(depth, rng)
        assert fast.expectation(parameters) == pytest.approx(
            dense.expectation(parameters), abs=1e-10
        )
