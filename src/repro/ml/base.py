"""Regressor interface shared by every model in :mod:`repro.ml`."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.exceptions import ModelError


def as_2d_features(features: np.ndarray, name: str = "X") -> np.ndarray:
    """Coerce *features* to a 2-D float array of shape ``(n_samples, n_features)``."""
    array = np.asarray(features, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2 or array.size == 0:
        raise ModelError(f"{name} must be a non-empty 2-D array, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ModelError(f"{name} contains non-finite values")
    return array


def as_1d_targets(targets: np.ndarray, name: str = "y") -> np.ndarray:
    """Coerce *targets* to a 1-D float array."""
    array = np.asarray(targets, dtype=float).reshape(-1)
    if array.size == 0:
        raise ModelError(f"{name} must be non-empty")
    if not np.all(np.isfinite(array)):
        raise ModelError(f"{name} contains non-finite values")
    return array


class Regressor(ABC):
    """Base class for single-output regressors (``fit`` / ``predict``)."""

    def __init__(self) -> None:
        self._fitted = False
        self._num_features: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called successfully."""
        return self._fitted

    @property
    def num_features(self) -> Optional[int]:
        """Input dimensionality seen at fit time (``None`` before fitting)."""
        return self._num_features

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "Regressor":
        """Fit the model; returns ``self`` for chaining."""
        features = as_2d_features(features)
        targets = as_1d_targets(targets)
        if features.shape[0] != targets.size:
            raise ModelError(
                f"X has {features.shape[0]} samples but y has {targets.size}"
            )
        self._fit(features, targets)
        self._num_features = features.shape[1]
        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for *features* (1-D array of length ``n_samples``)."""
        if not self._fitted:
            raise ModelError(f"{type(self).__name__} must be fitted before predicting")
        features = as_2d_features(features)
        if features.shape[1] != self._num_features:
            raise ModelError(
                f"expected {self._num_features} features, got {features.shape[1]}"
            )
        return np.asarray(self._predict(features), dtype=float).reshape(-1)

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination R² on the given data."""
        from repro.ml.metrics import r2_score

        return r2_score(as_1d_targets(targets), self.predict(features))

    @abstractmethod
    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Model-specific fitting on validated arrays."""

    @abstractmethod
    def _predict(self, features: np.ndarray) -> np.ndarray:
        """Model-specific prediction on validated arrays."""

    def clone(self) -> "Regressor":
        """Return an unfitted copy with the same hyper-parameters."""
        return type(self)(**self.get_params())

    def get_params(self) -> dict:
        """Constructor keyword arguments describing the hyper-parameters.

        Subclasses override; the default is an empty parameter set.
        """
        return {}

    def __repr__(self) -> str:
        params = ", ".join(f"{key}={value!r}" for key, value in self.get_params().items())
        return f"{type(self).__name__}({params})"
