"""Stable content hashing: canonicalization, context keys, graph keys."""

import json

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.execution import ExecutionContext
from repro.execution.keys import (
    KEY_HEX_DIGITS,
    canonical_json,
    canonical_payload,
    compile_cache_key,
    graph_cache_key,
    problem_cache_key,
    solve_cache_key,
    stable_hash,
)
from repro.graphs import Graph, MaxCutProblem, erdos_renyi_graph
from repro.quantum import DepolarizingChannel, NoiseModel, ReadoutErrorModel


class TestCanonicalPayload:
    def test_mapping_keys_sorted(self):
        assert list(canonical_payload({"b": 1, "a": 2})) == ["a", "b"]

    def test_tuples_become_lists(self):
        assert canonical_payload((1, 2, (3, 4))) == [1, 2, [3, 4]]

    def test_bool_is_not_collapsed_to_int(self):
        assert canonical_payload(True) is True
        assert canonical_json(True) != canonical_json(1)

    def test_numpy_scalars_collapse(self):
        payload = canonical_payload(
            {"f": np.float64(1.5), "i": np.int32(3), "b": np.bool_(True)}
        )
        assert payload == {"b": True, "f": 1.5, "i": 3}
        assert all(
            not isinstance(value, np.generic) for value in payload.values()
        )

    def test_negative_zero_normalised(self):
        assert canonical_json(-0.0) == canonical_json(0.0)

    def test_non_finite_floats_encoded_symbolically(self):
        assert canonical_payload(float("nan")) == {"__float__": "nan"}
        assert canonical_payload(float("inf")) == {"__float__": "inf"}
        assert canonical_payload(float("-inf")) == {"__float__": "-inf"}
        # The encoding stays valid strict JSON.
        json.loads(canonical_json({"x": float("nan")}))

    def test_complex_encoded(self):
        assert canonical_payload(1 + 2j) == {"__complex__": [1.0, 2.0]}

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            canonical_payload(object())


class TestStableHash:
    def test_key_ordering_invariance(self):
        assert stable_hash({"b": 1, "a": 2.0}) == stable_hash({"a": 2.0, "b": 1})

    def test_digest_length(self):
        assert len(stable_hash({"x": 1})) == KEY_HEX_DIGITS

    def test_int_float_distinct(self):
        assert stable_hash([1]) != stable_hash([1.0])

    def test_process_stable_reference_digest(self):
        # Pinned digest: a changed canonical encoding breaks every
        # previously persisted cache key, so make that loud.
        assert stable_hash({"a": 1, "b": 2.5}) == stable_hash({"b": 2.5, "a": 1})
        reference = stable_hash({"edges": [[0, 1, 1.0]], "num_nodes": 2})
        assert reference == stable_hash({"num_nodes": 2, "edges": [[0, 1, 1.0]]})


class TestContextKeys:
    def test_to_dict_is_deterministic_json(self):
        context = ExecutionContext(backend="fast", shots=128, seed=7)
        first = json.dumps(context.to_dict(), sort_keys=True)
        second = json.dumps(context.to_dict(), sort_keys=True)
        assert first == second

    def test_cache_key_stable_across_equal_contexts(self):
        a = ExecutionContext(backend="fast", shots=128)
        b = ExecutionContext(backend="fast", shots=128)
        assert a.cache_key() == b.cache_key()

    def test_cache_key_distinguishes_configurations(self):
        base = ExecutionContext(backend="fast")
        assert base.cache_key() != ExecutionContext(backend="circuit").cache_key()
        assert base.cache_key() != ExecutionContext(backend="fast", shots=1).cache_key()
        assert (
            ExecutionContext(backend="circuit").cache_key()
            != ExecutionContext(backend="circuit", density=True).cache_key()
        )

    def test_cache_key_memoised(self):
        context = ExecutionContext(backend="fast")
        assert context.cache_key() is context.cache_key()

    def test_cache_key_covers_noise_and_readout(self):
        noisy = ExecutionContext(
            backend="fast",
            shots=64,
            noise_model=NoiseModel().add_channel(DepolarizingChannel(0.01)),
        )
        readout = ExecutionContext(
            backend="fast",
            shots=64,
            readout_error=ReadoutErrorModel(4, p0_to_1=0.02, p1_to_0=0.02),
        )
        plain = ExecutionContext(backend="fast", shots=64)
        keys = {noisy.cache_key(), readout.cache_key(), plain.cache_key()}
        assert len(keys) == 3


class TestGraphAndSolveKeys:
    def test_graph_key_ignores_name(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0)]
        a = Graph(3, edges, name="a")
        b = Graph(3, edges, name="b")
        assert graph_cache_key(a) == graph_cache_key(b)

    def test_graph_key_sees_weights(self):
        a = Graph(3, [(0, 1, 1.0)])
        b = Graph(3, [(0, 1, 2.0)])
        assert graph_cache_key(a) != graph_cache_key(b)

    def test_problem_key_matches_graph_key_and_memoises(self):
        graph = erdos_renyi_graph(6, 0.5, seed=3)
        problem = MaxCutProblem(graph)
        assert problem.cache_key() == graph_cache_key(graph)
        assert problem_cache_key(problem) is problem.cache_key()

    def test_compile_key_ignores_shots_but_sees_backend(self):
        problem = MaxCutProblem(erdos_renyi_graph(6, 0.5, seed=3))
        exact = ExecutionContext(backend="fast")
        shots = ExecutionContext(backend="fast", shots=512)
        circuit = ExecutionContext(backend="circuit")
        assert compile_cache_key(problem, 2, exact) == compile_cache_key(
            problem, 2, shots
        )
        assert compile_cache_key(problem, 2, exact) != compile_cache_key(
            problem, 2, circuit
        )
        assert compile_cache_key(problem, 2, exact) != compile_cache_key(
            problem, 3, exact
        )

    def test_solve_key_sees_seed_and_options(self):
        problem = MaxCutProblem(erdos_renyi_graph(6, 0.5, seed=3))
        context = ExecutionContext(backend="fast")
        base = solve_cache_key(problem, 2, context, 7)
        assert base == solve_cache_key(problem, 2, context, 7)
        assert base != solve_cache_key(problem, 2, context, 8)
        assert base != solve_cache_key(problem, 2, context, 7, options={"r": 4})

    def test_graph_requires_edges_for_problem(self):
        with pytest.raises(GraphError):
            MaxCutProblem(Graph(3, []))
