"""Table I: run-time comparison between the naive and the two-level flow.

For every classical optimizer and target depth the experiment measures, over
the test graphs, the mean/SD approximation ratio and function-call count of
the naive random-initialization baseline and of the ML-initialized two-level
flow, plus the function-call reduction percentage.  The paper's headline
numbers are an average reduction of 44.9 % (up to 65.7 %), growing with the
target depth for every optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.acceleration.comparison import (
    ComparisonRecord,
    ComparisonSummary,
    aggregate_records,
    compare_on_problem,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.utils.tables import Table

#: FC reduction percentages reported in the paper's Table I, keyed by
#: (optimizer, target depth).  Used for side-by-side reporting only.
PAPER_FC_REDUCTIONS: Dict[Tuple[str, int], float] = {
    ("L-BFGS-B", 2): 20.8,
    ("L-BFGS-B", 3): 37.1,
    ("L-BFGS-B", 4): 47.8,
    ("L-BFGS-B", 5): 55.8,
    ("Nelder-Mead", 2): 12.3,
    ("Nelder-Mead", 3): 43.3,
    ("Nelder-Mead", 4): 57.7,
    ("Nelder-Mead", 5): 61.4,
    ("SLSQP", 2): 17.8,
    ("SLSQP", 3): 40.9,
    ("SLSQP", 4): 54.0,
    ("SLSQP", 5): 63.8,
    ("COBYLA", 2): 22.7,
    ("COBYLA", 3): 53.5,
    ("COBYLA", 4): 63.7,
    ("COBYLA", 5): 65.7,
}

#: The paper's overall average FC reduction across Table I.
PAPER_AVERAGE_FC_REDUCTION = 44.9


@dataclass
class Table1Result:
    """Aggregated naive-vs-two-level comparison (the reproduction of Table I)."""

    table: Table
    summaries: List[ComparisonSummary]
    records: List[ComparisonRecord]
    config: ExperimentConfig

    @property
    def average_fc_reduction(self) -> float:
        """Mean FC reduction over all optimizer/depth combinations."""
        return float(
            np.mean([summary.mean_fc_reduction_percent for summary in self.summaries])
        )

    @property
    def max_fc_reduction(self) -> float:
        """Largest FC reduction over all optimizer/depth combinations."""
        return float(
            np.max([summary.mean_fc_reduction_percent for summary in self.summaries])
        )

    def summary_for(self, optimizer: str, target_depth: int) -> ComparisonSummary:
        """The aggregate row for one optimizer / depth combination."""
        for summary in self.summaries:
            if (
                summary.optimizer_name == optimizer
                and summary.target_depth == target_depth
            ):
                return summary
        raise KeyError((optimizer, target_depth))

    def to_text(self) -> str:
        """Plain-text rendering in the shape of the paper's Table I."""
        return "\n".join(
            [
                "Table I reproduction: naive vs two-level run-time comparison",
                self.table.to_text(),
                "",
                f"Average FC reduction: {self.average_fc_reduction:.1f}% "
                f"(paper: {PAPER_AVERAGE_FC_REDUCTION}%), "
                f"maximum: {self.max_fc_reduction:.1f}% (paper: 65.7%)",
            ]
        )


def run_table1(
    config: ExperimentConfig = None, context: ExperimentContext = None
) -> Table1Result:
    """Regenerate the Table I comparison on the configured scale."""
    config = config or ExperimentConfig()
    context = context or ExperimentContext(config)
    predictor = context.predictor()
    problems = context.test_problems()

    table = Table(
        [
            "optimizer",
            "p",
            "naive_mean_ar",
            "naive_std_ar",
            "naive_mean_fc",
            "naive_std_fc",
            "two_level_mean_ar",
            "two_level_std_ar",
            "two_level_mean_fc",
            "two_level_std_fc",
            "fc_reduction_percent",
            "paper_fc_reduction_percent",
        ]
    )
    summaries: List[ComparisonSummary] = []
    all_records: List[ComparisonRecord] = []
    for optimizer in config.evaluation_optimizers:
        for depth in config.target_depths:
            records = [
                compare_on_problem(
                    problem,
                    depth,
                    predictor,
                    context=config.execution,
                    optimizer=optimizer,
                    num_restarts=config.naive_restarts,
                    tolerance=config.tolerance,
                    max_iterations=config.max_iterations,
                    seed=config.seed + 100 + index,
                )
                for index, problem in enumerate(problems)
            ]
            all_records.extend(records)
            summary = aggregate_records(records)
            summaries.append(summary)
            table.add_row(
                optimizer=summary.optimizer_name,
                p=summary.target_depth,
                naive_mean_ar=summary.naive_mean_ar,
                naive_std_ar=summary.naive_std_ar,
                naive_mean_fc=summary.naive_mean_fc,
                naive_std_fc=summary.naive_std_fc,
                two_level_mean_ar=summary.two_level_mean_ar,
                two_level_std_ar=summary.two_level_std_ar,
                two_level_mean_fc=summary.two_level_mean_fc,
                two_level_std_fc=summary.two_level_std_fc,
                fc_reduction_percent=summary.mean_fc_reduction_percent,
                paper_fc_reduction_percent=PAPER_FC_REDUCTIONS.get(
                    (optimizer, depth), float("nan")
                ),
            )
    return Table1Result(
        table=table, summaries=summaries, records=all_records, config=config
    )
