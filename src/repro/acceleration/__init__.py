"""The accelerated QAOA flows: naive baseline and the ML two-level approach."""

from repro.acceleration.baseline import NaiveOutcome, NaiveQAOARunner
from repro.acceleration.two_level import TwoLevelOutcome, TwoLevelQAOARunner
from repro.acceleration.comparison import (
    ComparisonRecord,
    ComparisonSummary,
    aggregate_records,
    compare_on_problem,
)

__all__ = [
    "NaiveQAOARunner",
    "NaiveOutcome",
    "TwoLevelQAOARunner",
    "TwoLevelOutcome",
    "ComparisonRecord",
    "ComparisonSummary",
    "compare_on_problem",
    "aggregate_records",
]
