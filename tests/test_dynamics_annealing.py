"""AnnealingSolver: adiabatic convergence, capability gating, payloads."""

import numpy as np
import pytest

from repro.dynamics import (
    AnnealingSchedule,
    AnnealingSolver,
    LINDBLAD_MAX_QUBITS,
    SCHRODINGER_MAX_QUBITS,
)
from repro.dynamics.annealing import AnnealingResult, dissipation_payload
from repro.exceptions import ConfigurationError
from repro.execution import ExecutionContext
from repro.graphs import MaxCutProblem, erdos_renyi_graph, random_regular_graph
from repro.quantum.noise import DepolarizingChannel, NoiseModel


@pytest.fixture
def problem(triangle_graph):
    return MaxCutProblem(triangle_graph)


class TestAdiabaticConvergence:
    """Acceptance gate: ratio >= 0.95 on small graphs at long anneal times."""

    @pytest.mark.parametrize(
        "graph",
        [
            erdos_renyi_graph(4, 0.9, seed=5),
            erdos_renyi_graph(6, 0.6, seed=2),
            random_regular_graph(3, 8, seed=1),
        ],
        ids=["er4", "er6", "reg8"],
    )
    def test_long_anneal_reaches_ratio(self, graph):
        solver = AnnealingSolver(rtol=1e-7, atol=1e-9)
        result = solver.solve(MaxCutProblem(graph), anneal_time=15.0)
        assert result.approximation_ratio >= 0.95
        assert result.invariant_drift < 1e-5

    def test_longer_anneal_improves_ratio(self, problem):
        solver = AnnealingSolver(rtol=1e-7, atol=1e-9)
        short = solver.solve(problem, anneal_time=0.5)
        long = solver.solve(problem, anneal_time=12.0)
        assert long.approximation_ratio > short.approximation_ratio

    def test_most_probable_assignment_is_optimal(self, problem):
        result = AnnealingSolver(rtol=1e-7, atol=1e-9).solve(
            problem, anneal_time=15.0
        )
        assert result.most_probable_assignment in problem.optimal_assignments()
        assert result.success_probability > 0.5

    def test_rk4_path_agrees_with_rk45(self, problem):
        adaptive = AnnealingSolver(rtol=1e-8, atol=1e-10).solve(
            problem, anneal_time=6.0
        )
        fixed = AnnealingSolver(method="rk4", num_steps=600).solve(
            problem, anneal_time=6.0
        )
        assert fixed.method == "rk4"
        assert fixed.optimal_expectation == pytest.approx(
            adaptive.optimal_expectation, abs=1e-6
        )

    def test_deterministic(self, problem):
        solver = AnnealingSolver(rtol=1e-7, atol=1e-9)
        first = solver.solve(problem, anneal_time=4.0)
        second = solver.solve(problem, anneal_time=4.0)
        assert first.optimal_expectation == second.optimal_expectation
        assert first.cut_distribution == second.cut_distribution


class TestDissipation:
    def test_dissipation_degrades_success(self, problem):
        closed = AnnealingSolver(rtol=1e-7, atol=1e-9).solve(
            problem, anneal_time=8.0
        )
        open_system = AnnealingSolver(
            rtol=1e-7, atol=1e-9, dissipation=0.1
        ).solve(problem, anneal_time=8.0)
        assert open_system.success_probability < closed.success_probability
        assert open_system.dissipation == {"kind": "depolarizing", "rate": 0.1}
        assert closed.dissipation is None

    def test_rates_mapping_and_noise_model_forms(self, problem):
        by_rates = AnnealingSolver(
            rtol=1e-7, atol=1e-9, dissipation={"Z": 0.05}
        ).solve(problem, anneal_time=4.0)
        assert by_rates.dissipation == {"kind": "rates", "rates": {"Z": 0.05}}
        model = NoiseModel().add_channel(DepolarizingChannel(0.02))
        by_model = AnnealingSolver(
            rtol=1e-7, atol=1e-9, dissipation=model
        ).solve(problem, anneal_time=4.0)
        assert by_model.dissipation["kind"] == "noise_model"

    def test_payload_validation(self):
        with pytest.raises(ConfigurationError, match="unknown jump"):
            dissipation_payload({"W": 0.1})
        with pytest.raises(ConfigurationError, match="rate"):
            dissipation_payload(-0.5)
        with pytest.raises(ConfigurationError, match="NoiseModel"):
            dissipation_payload(object())
        with pytest.raises(ConfigurationError, match="rate >= 0"):
            AnnealingSolver(dissipation=float("nan"))


class TestScheduleResolution:
    def test_explicit_schedule_wins(self, problem):
        ramp = AnnealingSchedule.linear(5.0)
        solver = AnnealingSolver(rtol=1e-7, atol=1e-9)
        result = solver.solve(problem, schedule=ramp)
        assert result.schedule == ramp.payload()
        assert result.anneal_time == 5.0

    def test_contradictory_time_and_schedule(self, problem):
        solver = AnnealingSolver()
        with pytest.raises(ConfigurationError, match="contradicts"):
            solver.solve(problem, anneal_time=3.0, schedule=AnnealingSchedule.linear(5.0))

    def test_solver_default_schedule(self, problem):
        solver = AnnealingSolver(AnnealingSchedule.smooth(4.0), rtol=1e-7, atol=1e-9)
        result = solver.solve(problem)
        assert result.anneal_time == 4.0

    def test_no_time_source_raises(self, problem):
        with pytest.raises(ConfigurationError, match="anneal_time"):
            AnnealingSolver().solve(problem)

    def test_bare_time_builds_smooth_ramp(self):
        resolved = AnnealingSolver().resolve_schedule(7.0, None)
        assert resolved == AnnealingSchedule.smooth(7.0)


class TestCapabilityGating:
    def test_fast_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="supports_continuous"):
            AnnealingSolver(context="fast")

    def test_context_object_accepted(self):
        solver = AnnealingSolver(context=ExecutionContext(backend="circuit"))
        assert solver.backend == "circuit"
        assert solver.context.backend == "circuit"

    def test_register_ceilings(self):
        big = MaxCutProblem(
            erdos_renyi_graph(SCHRODINGER_MAX_QUBITS + 1, 0.5, seed=0)
        )
        with pytest.raises(ConfigurationError, match="limited to"):
            AnnealingSolver().solve(big, anneal_time=1.0)
        medium = MaxCutProblem(
            erdos_renyi_graph(LINDBLAD_MAX_QUBITS + 1, 0.5, seed=0)
        )
        with pytest.raises(ConfigurationError, match="dissipative"):
            AnnealingSolver(dissipation=0.1).solve(medium, anneal_time=1.0)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError, match="unknown integration method"):
            AnnealingSolver(method="euler")
        with pytest.raises(ConfigurationError, match="AnnealingSchedule"):
            AnnealingSolver(schedule=5.0)
        with pytest.raises(ConfigurationError, match="MaxCutProblem"):
            AnnealingSolver().solve("not a problem", anneal_time=1.0)


class TestResultPayload:
    def test_round_trip(self, problem):
        result = AnnealingSolver(rtol=1e-7, atol=1e-9).solve(problem, anneal_time=4.0)
        rebuilt = AnnealingResult.from_payload(result.to_payload())
        assert rebuilt.optimal_expectation == result.optimal_expectation
        assert rebuilt.approximation_ratio == result.approximation_ratio
        assert rebuilt.schedule == result.schedule
        assert rebuilt.context == result.context
        assert rebuilt.cut_distribution == result.cut_distribution

    def test_to_dict_includes_ratio(self, problem):
        result = AnnealingSolver(rtol=1e-7, atol=1e-9).solve(problem, anneal_time=4.0)
        payload = result.to_dict()
        assert payload["approximation_ratio"] == result.approximation_ratio

    def test_distribution_sums_to_one(self, problem):
        result = AnnealingSolver(rtol=1e-7, atol=1e-9).solve(problem, anneal_time=4.0)
        total = sum(probability for _, probability in result.cut_distribution)
        assert total == pytest.approx(1.0)

    def test_options_payload_shape(self):
        payload = AnnealingSolver(dissipation=0.2).options_payload()
        assert payload["method"] == "rk45"
        assert payload["backend"] == "circuit"
        assert payload["dissipation"] == {"kind": "depolarizing", "rate": 0.2}
