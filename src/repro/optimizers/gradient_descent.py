"""Finite-difference gradient descent with backtracking line search.

A deliberately simple reference optimizer: it makes the relationship between
parameter dimensionality and function-call count fully transparent (each
gradient estimate costs ``2 * num_parameters`` evaluations), which is the
mechanism behind the paper's observation that higher-depth QAOA instances
need more loop iterations.
"""

from __future__ import annotations

import numpy as np

from repro.optimizers.base import Bounds, CountingObjective, OptimizationResult, Optimizer


class FiniteDifferenceGradientDescent(Optimizer):
    """Steepest descent using central finite differences."""

    def __init__(
        self,
        *,
        learning_rate: float = 0.1,
        finite_difference_step: float = 1e-4,
        tolerance: float = 1e-6,
        max_iterations: int = 500,
        record_history: bool = False,
    ):
        super().__init__(
            "GradientDescent",
            tolerance=tolerance,
            max_iterations=max_iterations,
            record_history=record_history,
        )
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if finite_difference_step <= 0:
            raise ValueError(
                f"finite_difference_step must be positive, got {finite_difference_step}"
            )
        self._learning_rate = float(learning_rate)
        self._step = float(finite_difference_step)

    def _clip(self, point: np.ndarray, bounds: Bounds) -> np.ndarray:
        if bounds is None:
            return point
        lows = np.array([low for low, _ in bounds])
        highs = np.array([high for _, high in bounds])
        return np.clip(point, lows, highs)

    def _gradient(self, objective: CountingObjective, point: np.ndarray) -> np.ndarray:
        gradient = np.zeros_like(point)
        for axis in range(point.size):
            shift = np.zeros_like(point)
            shift[axis] = self._step
            gradient[axis] = (objective(point + shift) - objective(point - shift)) / (
                2.0 * self._step
            )
        return gradient

    def _minimize(
        self,
        objective: CountingObjective,
        initial_point: np.ndarray,
        bounds: Bounds,
    ) -> OptimizationResult:
        point = self._clip(initial_point.copy(), bounds)
        value = objective(point)
        converged = False
        iterations = 0

        for iterations in range(1, self._max_iterations + 1):
            gradient = self._gradient(objective, point)
            gradient_norm = float(np.linalg.norm(gradient))
            if gradient_norm <= self._tolerance:
                converged = True
                break

            # Backtracking line search on the learning rate.
            step_size = self._learning_rate
            improved = False
            for _ in range(20):
                candidate = self._clip(point - step_size * gradient, bounds)
                candidate_value = objective(candidate)
                if candidate_value < value:
                    improved = True
                    break
                step_size *= 0.5
            if not improved:
                converged = True
                break
            if abs(value - candidate_value) <= self._tolerance:
                point, value = candidate, candidate_value
                converged = True
                break
            point, value = candidate, candidate_value

        return OptimizationResult(
            optimal_parameters=point,
            optimal_value=float(value),
            num_function_calls=objective.num_evaluations,
            num_iterations=iterations,
            converged=converged,
            optimizer_name=self.name,
            message="converged" if converged else "iteration limit",
        )
