"""Lindblad generator: structured path vs dense oracles and the unitary engine."""

import numpy as np
import pytest

from repro.dynamics import (
    DENSE_SUPEROP_MAX_QUBITS,
    Hamiltonian,
    JumpOperator,
    Lindbladian,
    evolve,
)
from repro.exceptions import ConfigurationError, SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density import DensityMatrix
from repro.quantum.noise import (
    AmplitudeDampingChannel,
    DepolarizingChannel,
    NoiseModel,
    TwoQubitDepolarizingChannel,
)
from repro.quantum.operators import PauliSum
from repro.quantum.simulator import StatevectorSimulator


def random_density(rng, num_qubits):
    dim = 1 << num_qubits
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    rho = raw @ raw.conj().T
    return rho / np.trace(rho)


class TestJumpOperator:
    def test_unknown_label(self):
        with pytest.raises(ConfigurationError, match="unknown jump operator"):
            JumpOperator("W", 0, 0.1)

    def test_bad_matrix_shape(self):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            JumpOperator(np.eye(3), 0, 0.1)

    def test_qubit_count_mismatch(self):
        with pytest.raises(ConfigurationError, match="qubit"):
            JumpOperator(np.eye(2), (0, 1), 0.1)

    def test_duplicate_qubits(self):
        with pytest.raises(ConfigurationError, match="distinct"):
            JumpOperator(np.eye(4), (1, 1), 0.1)

    def test_negative_rate(self):
        with pytest.raises(ConfigurationError, match="rate"):
            JumpOperator("X", 0, -0.5)

    def test_repr(self):
        assert "sigma_minus" in repr(JumpOperator("sigma_minus", 2, 0.25))


class TestConstruction:
    def test_needs_register_size(self):
        with pytest.raises(ConfigurationError, match="num_qubits"):
            Lindbladian(jumps=[("X", 0, 0.1)])

    def test_register_size_mismatch(self):
        ham = Hamiltonian.transverse_field(2)
        with pytest.raises(ConfigurationError, match="num_qubits"):
            Lindbladian(ham, num_qubits=3)

    def test_zero_rate_jumps_dropped(self):
        lind = Lindbladian(None, [("X", 0, 0.0), ("Z", 1, 0.4)], num_qubits=2)
        assert len(lind.jumps) == 1
        assert lind.jumps[0].label == "Z"

    def test_jump_outside_register(self):
        with pytest.raises(ConfigurationError, match="outside"):
            Lindbladian(None, [("X", 5, 0.1)], num_qubits=2)

    def test_depolarizing_layout(self):
        lind = Lindbladian.depolarizing(2, 0.3)
        assert len(lind.jumps) == 6  # X/Y/Z on each of 2 qubits
        assert all(jump.rate == pytest.approx(0.1) for jump in lind.jumps)
        with pytest.raises(ConfigurationError, match="rate"):
            Lindbladian.depolarizing(2, -1.0)

    def test_repr_summarises(self):
        lind = Lindbladian.depolarizing(2, 0.3)
        assert "num_qubits=2" in repr(lind)
        assert "jumps=6" in repr(lind)


class TestStructuredVsDenseSuperoperator:
    """The structured rhs path must equal the explicit 4^n x 4^n generator."""

    @pytest.mark.parametrize("num_qubits", [2, 3])
    def test_mixed_jump_family(self, rng, num_qubits):
        ham = Hamiltonian(
            PauliSum([(0.6, "X" * num_qubits), (0.4, "Z" + "I" * (num_qubits - 1))])
        )
        correlated = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        lind = Lindbladian(
            ham,
            [
                ("X", 0, 0.2),
                ("sigma_minus", num_qubits - 1, 0.35),
                (correlated, (0, 1), 0.05),
            ],
        )
        rho = random_density(rng, num_qubits)
        structured = lind.rhs(0.0, rho.reshape(-1))
        dense = lind.superoperator() @ rho.reshape(-1)
        assert np.max(np.abs(structured - dense)) < 1e-12

    def test_pure_dissipation_no_hamiltonian(self, rng):
        lind = Lindbladian(None, [("Y", 0, 0.3), ("Z", 1, 0.2)], num_qubits=2)
        rho = random_density(rng, 2)
        structured = lind.rhs(0.0, rho.reshape(-1))
        dense = lind.superoperator() @ rho.reshape(-1)
        assert np.max(np.abs(structured - dense)) < 1e-12

    def test_rhs_preserves_trace_and_hermiticity(self, rng):
        lind = Lindbladian.depolarizing(
            2, 0.4, hamiltonian=Hamiltonian(PauliSum([(0.7, "ZZ"), (0.3, "XI")]))
        )
        rho = random_density(rng, 2)
        derivative = lind.rhs(0.0, rho.reshape(-1)).reshape(4, 4)
        assert abs(np.trace(derivative)) < 1e-12
        assert np.max(np.abs(derivative - derivative.conj().T)) < 1e-12

    def test_superoperator_cached_when_time_independent(self):
        lind = Lindbladian.depolarizing(1, 0.3)
        assert lind.superoperator() is lind.superoperator()


class TestClosedFormAgreement:
    def test_evolve_matches_expm_oracle(self, rng):
        ham = Hamiltonian(PauliSum([(0.7, "ZZ"), (0.3, "XI")]))
        lind = Lindbladian(ham, [("X", 0, 0.15), ("sigma_minus", 1, 0.25)])
        rho0 = random_density(rng, 2)
        result = evolve(lind, rho0, times=1.5, rtol=1e-10, atol=1e-12)
        expected = lind.expm_evolve(rho0, 1.5)
        assert np.max(np.abs(result.final_state.reshape(4, 4) - expected)) < 1e-8
        assert result.invariant_drift < 1e-8


class TestZeroDissipation:
    """Satellite (c): with every rate zero, Lindblad evolution is unitary and
    must match both Schrodinger integration and the compiled gate engine."""

    def test_matches_schrodinger_projector(self, rng):
        ham = Hamiltonian(PauliSum([(0.7, "ZZ"), (0.3, "XI"), (-0.4, "YY")]))
        lind = Lindbladian(ham, [("X", 0, 0.0), ("Z", 1, 0.0)])
        assert len(lind.jumps) == 0
        psi0 = rng.normal(size=4) + 1j * rng.normal(size=4)
        psi0 = psi0 / np.linalg.norm(psi0)
        rho0 = np.outer(psi0, psi0.conj())
        open_system = evolve(lind, rho0, times=2.0, rtol=1e-11, atol=1e-13)
        closed_system = evolve(ham, psi0, times=2.0, rtol=1e-11, atol=1e-13)
        psi = closed_system.final_state
        projector = np.outer(psi, psi.conj())
        diff = open_system.final_state.reshape(4, 4) - projector
        assert np.max(np.abs(diff)) < 1e-9

    def test_matches_compiled_unitary_engine(self):
        # Diagonal H = 0.7 ZZ + 0.5 Z(qubit 1): exp(-i H t) is exactly the
        # gate sequence rzz(2*0.7*t) rz(2*0.5*t) (rzz = exp(-i theta ZZ/2)).
        time = 1.3
        ham = Hamiltonian(PauliSum([(0.7, "ZZ"), (0.5, "ZI")]))
        lind = Lindbladian(ham, [("Y", 0, 0.0)])
        plus = np.full(4, 0.5, dtype=complex)
        result = evolve(
            lind, np.outer(plus, plus.conj()), times=time, rtol=1e-11, atol=1e-13
        )
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1)
        circuit.rzz(2.0 * 0.7 * time, 0, 1)
        circuit.rz(2.0 * 0.5 * time, 1)
        psi = StatevectorSimulator(compiled=True).run(circuit).data
        projector = np.outer(psi, psi.conj())
        diff = result.final_state.reshape(4, 4) - projector
        assert np.max(np.abs(diff)) < 1e-9


class TestKrausOracle:
    """Acceptance gate: the integrated depolarizing semigroup must match the
    exact discrete-channel (Kraus) application of the density simulator."""

    @pytest.mark.parametrize("rate,time", [(0.3, 1.0), (0.12, 2.5)])
    def test_depolarizing_semigroup_matches_channel(self, rng, rate, time):
        lind = Lindbladian.depolarizing(2, rate)
        rho0 = random_density(rng, 2)
        result = evolve(lind, rho0, times=time, rtol=1e-10, atol=1e-12)
        # Integrated per-qubit map: p(t) = 3/4 (1 - exp(-4 rate t / 3)).
        probability = 0.75 * (1.0 - np.exp(-4.0 * rate * time / 3.0))
        channel = DepolarizingChannel(probability)
        oracle = DensityMatrix(rho0, validate=False)
        for qubit in range(2):
            oracle = oracle.apply_channel(channel, qubit)
        assert np.max(np.abs(result.final_state.reshape(4, 4) - oracle.data)) < 1e-8

    def test_amplitude_damping_semigroup_matches_channel(self, rng):
        rate, time = 0.4, 1.7
        lind = Lindbladian(None, [("sigma_minus", 0, rate)], num_qubits=1)
        rho0 = random_density(rng, 1)
        result = evolve(lind, rho0, times=time, rtol=1e-10, atol=1e-12)
        gamma = 1.0 - np.exp(-rate * time)
        oracle = DensityMatrix(rho0, validate=False).apply_channel(
            AmplitudeDampingChannel(gamma), 0
        )
        assert np.max(np.abs(result.final_state.reshape(2, 2) - oracle.data)) < 1e-8


class TestFromNoiseModel:
    def test_depolarizing_model_converts(self):
        model = NoiseModel().add_channel(DepolarizingChannel(0.03))
        lind = Lindbladian.from_noise_model(model, 2)
        assert len(lind.jumps) == 6
        labels = sorted({jump.label for jump in lind.jumps})
        assert labels == ["X", "Y", "Z"]

    def test_qubit_filter_selects_targets(self):
        model = NoiseModel().add_channel(DepolarizingChannel(0.03), qubits=[1])
        lind = Lindbladian.from_noise_model(model, 3)
        assert {jump.qubits for jump in lind.jumps} == {(1,)}

    def test_gate_filter_rejected(self):
        model = NoiseModel().add_channel(DepolarizingChannel(0.03), gates=["cx"])
        with pytest.raises(ConfigurationError, match="gate-clock"):
            Lindbladian.from_noise_model(model, 2)

    def test_multi_qubit_channel_rejected(self):
        model = NoiseModel().add_channel(TwoQubitDepolarizingChannel(0.03))
        with pytest.raises(ConfigurationError, match="jointly"):
            Lindbladian.from_noise_model(model, 2)

    def test_out_of_register_target_rejected(self):
        model = NoiseModel().add_channel(DepolarizingChannel(0.03), qubits=[4])
        with pytest.raises(ConfigurationError, match="outside"):
            Lindbladian.from_noise_model(model, 2)

    def test_round_trip_reproduces_discrete_channel(self, rng):
        """exp(duration * L) of the converted model = one channel application."""
        duration = 0.8
        channel = DepolarizingChannel(0.05)
        model = NoiseModel().add_channel(channel, qubits=[0])
        lind = Lindbladian.from_noise_model(model, 1, duration=duration)
        rho0 = random_density(rng, 1)
        evolved = lind.expm_evolve(rho0, duration)
        oracle = DensityMatrix(rho0, validate=False).apply_channel(channel, 0)
        assert np.max(np.abs(evolved - oracle.data)) < 1e-12

    def test_requires_noise_model(self):
        with pytest.raises(ConfigurationError, match="NoiseModel"):
            Lindbladian.from_noise_model({"rules": []}, 2)


class TestDenseCeilings:
    def test_superoperator_capped(self):
        lind = Lindbladian.depolarizing(DENSE_SUPEROP_MAX_QUBITS + 1, 0.1)
        with pytest.raises(ConfigurationError, match="dense superoperator"):
            lind.superoperator()
        # The structured path has no such ceiling.
        rho = np.zeros((lind.dim, lind.dim), dtype=complex)
        rho[0, 0] = 1.0
        derivative = lind.rhs(0.0, rho.reshape(-1))
        assert np.isfinite(derivative).all()

    def test_expm_evolve_rejects_time_dependent(self):
        from repro.dynamics import AnnealingSchedule

        driver = Hamiltonian.transverse_field(2)
        cost = Hamiltonian(PauliSum([(1.0, "ZZ")]))
        generator = AnnealingSchedule.linear(1.0).interpolate(driver, cost)
        lind = Lindbladian(generator, [("Z", 0, 0.1)])
        assert lind.time_dependent
        rho = np.eye(4, dtype=complex) / 4.0
        with pytest.raises(ConfigurationError, match="time-independent"):
            lind.expm_evolve(rho, 1.0)

    def test_apply_density_shape_check(self):
        lind = Lindbladian.depolarizing(2, 0.1)
        with pytest.raises(SimulationError, match="density matrix"):
            lind.apply_density(np.eye(3))
