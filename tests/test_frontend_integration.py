"""Frontend integration: library circuits, evaluators, caches, capability."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.execution.registry import get_backend
from repro.frontend import ingest, lower_to_native, to_circuit
from repro.frontend.evaluator import CircuitExpectationEvaluator
from repro.frontend.library import available_circuits, circuit_source, load_circuit
from repro.quantum.noise import DepolarizingChannel, NoiseModel
from repro.quantum.operators import PauliSum
from repro.quantum.simulator import StatevectorSimulator


class TestBundledLibrary:
    def test_catalog(self):
        assert available_circuits() == ["ghz", "hwe_ansatz", "qft8"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="no bundled circuit"):
            circuit_source("nope")

    @pytest.mark.parametrize("name", ["ghz", "hwe_ansatz", "qft8"])
    def test_compiled_agrees_with_uncompiled_oracle_at_1e9(self, name):
        """Acceptance: parse → lower → execute compiled vs compiled=False."""
        ir = load_circuit(name)
        circuit = to_circuit(lower_to_native(ir))
        values = (
            None
            if not circuit.parameters
            else np.linspace(-1.0, 1.0, len(circuit.parameters))
        )
        compiled = StatevectorSimulator(compiled=True).run(circuit, values)
        oracle = StatevectorSimulator(compiled=False).run(circuit, values)
        assert np.abs(compiled.data - oracle.data).max() < 1e-9

    def test_ghz_state_is_correct(self):
        circuit = ingest(circuit_source("ghz"))
        state = StatevectorSimulator().run(circuit)
        probabilities = state.probabilities()
        assert probabilities[0] == pytest.approx(0.5, abs=1e-12)
        assert probabilities[-1] == pytest.approx(0.5, abs=1e-12)
        assert probabilities[1:-1].max() < 1e-12

    def test_qft8_maps_zero_state_to_uniform(self):
        circuit = ingest(circuit_source("qft8"))
        state = StatevectorSimulator().run(circuit)
        uniform = np.full(2**8, 2 ** -4.0)
        assert np.abs(np.abs(state.data) - uniform).max() < 1e-9


class TestCircuitExpectationEvaluator:
    OBSERVABLE = PauliSum([(1.0, "ZZII"), (1.0, "IIZZ"), (0.5, "XIIX")])

    def evaluator(self, **kwargs):
        return CircuitExpectationEvaluator(
            circuit_source("hwe_ansatz"), self.OBSERVABLE, **kwargs
        )

    def test_compiled_and_generic_paths_agree(self):
        values = np.linspace(-2.0, 2.0, 24)
        fast = self.evaluator(compiled=True).expectation(values)
        slow = self.evaluator(compiled=False).expectation(values)
        assert fast == pytest.approx(slow, abs=1e-9)

    def test_restricted_basis_agrees(self):
        values = np.linspace(-2.0, 2.0, 24)
        default = self.evaluator().expectation(values)
        restricted = self.evaluator(lower_to={"rz", "rx", "cx"}).expectation(values)
        assert restricted == pytest.approx(default, abs=1e-9)

    def test_batch_matches_loop(self):
        evaluator = self.evaluator()
        batch = np.random.default_rng(3).uniform(-1, 1, size=(4, 24))
        vectorized = evaluator.expectation_batch(batch)
        looped = np.array([evaluator.expectation(row) for row in batch])
        assert np.abs(vectorized - looped).max() < 1e-9

    def test_named_bindings_match_positional(self):
        evaluator = self.evaluator()
        values = np.linspace(0.0, 1.0, 24)
        named = {p.name: v for p, v in zip(evaluator.parameters, values)}
        assert evaluator.expectation(named) == evaluator.expectation(values)

    def test_density_expectation_matches_statevector_when_noiseless(self):
        evaluator = self.evaluator()
        values = np.linspace(-0.5, 0.5, 24)
        exact = evaluator.expectation(values)
        density = evaluator.density_expectation(values)
        assert density == pytest.approx(exact, abs=1e-9)

    def test_density_expectation_with_noise_shrinks_signal(self):
        evaluator = self.evaluator()
        values = np.linspace(-0.5, 0.5, 24)
        model = NoiseModel()
        model.add_channel(DepolarizingChannel(0.05))
        noiseless = evaluator.density_expectation(values)
        noisy = evaluator.density_expectation(values, noise_model=model)
        assert abs(noisy) < abs(noiseless)

    def test_observable_qubit_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitExpectationEvaluator(
                circuit_source("hwe_ansatz"), PauliSum([(1.0, "ZZ")])
            )

    def test_program_cache_rebinds_instead_of_recompiling(self):
        evaluator = self.evaluator()
        simulator = evaluator.simulator
        rng = np.random.default_rng(11)
        for _ in range(4):
            evaluator.expectation(rng.uniform(-1, 1, 24))
        assert simulator.program_cache_misses == 1
        assert simulator.program_cache_hits >= 3

    def test_from_circuit_classmethod(self):
        from repro.qaoa.cost import ExpectationEvaluator

        evaluator = ExpectationEvaluator.from_circuit(
            circuit_source("hwe_ansatz"), self.OBSERVABLE
        )
        assert isinstance(evaluator, CircuitExpectationEvaluator)
        assert evaluator.num_parameters == 24


class TestExecutionSurface:
    def test_circuit_backend_advertises_ingest(self):
        assert get_backend("circuit").capabilities()["supports_ingest"] is True

    def test_fast_backend_does_not(self):
        assert get_backend("fast").capabilities()["supports_ingest"] is False

    def test_quantum_circuit_grew_a_to_qasm_hook(self):
        circuit = ingest(circuit_source("ghz"))
        text = circuit.to_qasm()
        assert text.startswith("OPENQASM 2.0;")
        rebuilt = ingest(text)
        state = StatevectorSimulator().run(rebuilt)
        assert state.probabilities()[0] == pytest.approx(0.5, abs=1e-12)
