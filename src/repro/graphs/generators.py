"""Random and structured graph generators.

The paper draws its training/test problems from the Erdős–Rényi ensemble with
edge probability 0.5 (Sec. III-A) and uses 3-regular graphs for the trend
figures (Figs. 1–3).  All generators here are implemented natively on top of
NumPy RNGs so the library does not depend on NetworkX being importable,
although :class:`~repro.graphs.model.Graph` interoperates with it.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.model import Graph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    *,
    seed: RandomState = None,
    require_edges: bool = True,
    name: str = None,
) -> Graph:
    """Sample a G(n, p) Erdős–Rényi graph.

    Parameters
    ----------
    num_nodes, edge_probability:
        Ensemble parameters; the paper uses ``n = 8`` and ``p = 0.5``.
    require_edges:
        When true (default), resample until the graph has at least one edge so
        that the MaxCut problem is non-trivial.
    """
    check_positive_int(num_nodes, "num_nodes")
    check_probability(edge_probability, "edge_probability")
    rng = ensure_rng(seed)
    for _ in range(1000):
        edges = [
            (u, v, 1.0)
            for u in range(num_nodes)
            for v in range(u + 1, num_nodes)
            if rng.random() < edge_probability
        ]
        if edges or not require_edges:
            return Graph(
                num_nodes, edges, name=name or f"er_{num_nodes}_{edge_probability:g}"
            )
    raise GraphError(
        "failed to sample an Erdos-Renyi graph with at least one edge; "
        "edge_probability is likely too small"
    )


def weighted_erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    *,
    weight_low: float = 0.5,
    weight_high: float = 1.5,
    seed: RandomState = None,
    name: str = None,
) -> Graph:
    """Erdős–Rényi graph with uniform random edge weights.

    This extends the paper's unweighted setup and is used by the weighted
    MaxCut example and the robustness ablations.
    """
    if weight_high < weight_low:
        raise GraphError("weight_high must be >= weight_low")
    rng = ensure_rng(seed)
    base = erdos_renyi_graph(
        num_nodes, edge_probability, seed=rng, name=name or "weighted_er"
    )
    graph = Graph(num_nodes, name=base.name)
    for u, v, _ in base.edges:
        graph.add_edge(u, v, float(rng.uniform(weight_low, weight_high)))
    return graph


def random_regular_graph(
    degree: int,
    num_nodes: int,
    *,
    seed: RandomState = None,
    max_attempts: int = 2000,
    name: str = None,
) -> Graph:
    """Sample a random d-regular graph via the pairing (configuration) model.

    Used for the 3-regular, 8-node graphs of Figs. 1–3.  The pairing model is
    retried until it produces a simple graph, which is fast for the small
    sizes used here.
    """
    check_positive_int(degree, "degree")
    check_positive_int(num_nodes, "num_nodes")
    if degree >= num_nodes:
        raise GraphError(f"degree {degree} must be smaller than num_nodes {num_nodes}")
    if (degree * num_nodes) % 2 != 0:
        raise GraphError("degree * num_nodes must be even for a regular graph")
    rng = ensure_rng(seed)

    stubs_template = np.repeat(np.arange(num_nodes), degree)
    for _ in range(max_attempts):
        stubs = stubs_template.copy()
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edges = set()
        simple = True
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v or (min(u, v), max(u, v)) in edges:
                simple = False
                break
            edges.add((min(u, v), max(u, v)))
        if simple:
            return Graph(
                num_nodes,
                [(u, v, 1.0) for u, v in sorted(edges)],
                name=name or f"regular_{degree}_{num_nodes}",
            )
    raise GraphError(
        f"failed to sample a simple {degree}-regular graph on {num_nodes} nodes "
        f"after {max_attempts} attempts"
    )


def complete_graph(num_nodes: int, *, weight: float = 1.0, name: str = None) -> Graph:
    """The complete graph ``K_n``."""
    check_positive_int(num_nodes, "num_nodes")
    edges = [
        (u, v, weight) for u in range(num_nodes) for v in range(u + 1, num_nodes)
    ]
    return Graph(num_nodes, edges, name=name or f"complete_{num_nodes}")


def cycle_graph(num_nodes: int, *, weight: float = 1.0, name: str = None) -> Graph:
    """The cycle (ring) graph ``C_n``."""
    check_positive_int(num_nodes, "num_nodes")
    if num_nodes < 3:
        raise GraphError("a cycle needs at least 3 nodes")
    edges = [(node, (node + 1) % num_nodes, weight) for node in range(num_nodes)]
    return Graph(num_nodes, edges, name=name or f"cycle_{num_nodes}")


def path_graph(num_nodes: int, *, weight: float = 1.0, name: str = None) -> Graph:
    """The path graph ``P_n``."""
    check_positive_int(num_nodes, "num_nodes")
    if num_nodes < 2:
        raise GraphError("a path needs at least 2 nodes")
    edges = [(node, node + 1, weight) for node in range(num_nodes - 1)]
    return Graph(num_nodes, edges, name=name or f"path_{num_nodes}")


def star_graph(num_nodes: int, *, weight: float = 1.0, name: str = None) -> Graph:
    """The star graph with node 0 at the centre."""
    check_positive_int(num_nodes, "num_nodes")
    if num_nodes < 2:
        raise GraphError("a star needs at least 2 nodes")
    edges = [(0, node, weight) for node in range(1, num_nodes)]
    return Graph(num_nodes, edges, name=name or f"star_{num_nodes}")


def barbell_graph(clique_size: int, *, name: str = None) -> Graph:
    """Two cliques of *clique_size* nodes joined by a single bridge edge."""
    check_positive_int(clique_size, "clique_size")
    if clique_size < 2:
        raise GraphError("each clique needs at least 2 nodes")
    num_nodes = 2 * clique_size
    edges: List = []
    for offset in (0, clique_size):
        for u in range(clique_size):
            for v in range(u + 1, clique_size):
                edges.append((offset + u, offset + v, 1.0))
    edges.append((clique_size - 1, clique_size, 1.0))
    return Graph(num_nodes, edges, name=name or f"barbell_{clique_size}")
