"""Package-level tests: exports, version, exception hierarchy, configuration."""

import math

import pytest

import repro
from repro.config import (
    BETA_MAX,
    BETA_SYMMETRY_PERIOD,
    DEFAULT_TOLERANCE,
    GAMMA_MAX,
    PaperSetup,
    paper_setup,
)
from repro.exceptions import (
    CircuitError,
    ConfigurationError,
    DatasetError,
    GraphError,
    ModelError,
    OptimizationError,
    ReproError,
    SimulationError,
)


class TestPackage:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_subpackages_importable(self):
        import repro.acceleration
        import repro.experiments
        import repro.graphs
        import repro.ml
        import repro.optimizers
        import repro.prediction
        import repro.qaoa
        import repro.quantum
        import repro.utils

        for module in (
            repro.quantum,
            repro.graphs,
            repro.ml,
            repro.optimizers,
            repro.qaoa,
            repro.prediction,
            repro.acceleration,
            repro.experiments,
            repro.utils,
        ):
            assert module.__doc__


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            CircuitError,
            SimulationError,
            GraphError,
            OptimizationError,
            ModelError,
            DatasetError,
            ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)
        assert issubclass(exception, Exception)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise GraphError("boom")


class TestPaperConstants:
    def test_parameter_domains(self):
        assert BETA_MAX == pytest.approx(math.pi)
        assert GAMMA_MAX == pytest.approx(2 * math.pi)
        assert BETA_SYMMETRY_PERIOD == pytest.approx(math.pi / 2)
        assert DEFAULT_TOLERANCE == 1e-6

    def test_paper_setup_values(self):
        setup = paper_setup()
        assert setup.num_graphs == 330
        assert setup.num_nodes == 8
        assert setup.depths == (1, 2, 3, 4, 5, 6)
        assert setup.target_depths == (2, 3, 4, 5)
        assert setup.num_restarts == 20
        assert setup.train_fraction == pytest.approx(0.2)
        assert setup.num_optimal_parameters == 13860

    def test_paper_setup_is_frozen(self):
        with pytest.raises(Exception):
            paper_setup().num_graphs = 10

    def test_custom_setup(self):
        setup = PaperSetup(num_graphs=10, depths=(1, 2))
        assert setup.num_optimal_parameters == 10 * (2 + 4)
