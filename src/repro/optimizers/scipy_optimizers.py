"""SciPy-backed local optimizers.

These are the four optimizers evaluated in Table I of the paper: the
gradient-based L-BFGS-B and SLSQP and the gradient-free Nelder-Mead and
COBYLA.  Gradients are obtained by SciPy's internal finite differencing, so
every gradient estimate also shows up in the function-call count — exactly as
it would on a real quantum processor.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy import optimize as scipy_optimize

from repro.exceptions import OptimizationError
from repro.optimizers.base import Bounds, CountingObjective, OptimizationResult, Optimizer


class ScipyOptimizer(Optimizer):
    """Adapter from :func:`scipy.optimize.minimize` to :class:`Optimizer`."""

    #: SciPy method name; subclasses override.
    method: str = None

    def __init__(
        self,
        *,
        tolerance: float = 1e-6,
        max_iterations: int = 10000,
        record_history: bool = False,
        options: Dict = None,
    ):
        if self.method is None:
            raise OptimizationError(
                "ScipyOptimizer must be subclassed with a concrete method"
            )
        super().__init__(
            self.method,
            tolerance=tolerance,
            max_iterations=max_iterations,
            record_history=record_history,
        )
        self._extra_options = dict(options or {})

    def _scipy_options(self) -> Dict:
        """Method-specific options implementing the functional tolerance."""
        options: Dict = {"maxiter": self._max_iterations}
        if self.method in ("L-BFGS-B", "SLSQP"):
            options["ftol"] = self._tolerance
        elif self.method == "Nelder-Mead":
            options["fatol"] = self._tolerance
            options["xatol"] = self._tolerance
        elif self.method == "COBYLA":
            # COBYLA's final trust-region radius plays the tolerance role.
            options["tol"] = self._tolerance
            options["maxiter"] = self._max_iterations
        options.update(self._extra_options)
        return options

    def _supports_bounds(self) -> bool:
        return self.method in ("L-BFGS-B", "SLSQP", "Nelder-Mead")

    def _minimize(
        self,
        objective: CountingObjective,
        initial_point: np.ndarray,
        bounds: Bounds,
    ) -> OptimizationResult:
        options = self._scipy_options()
        kwargs = {}
        if bounds is not None and self._supports_bounds():
            kwargs["bounds"] = bounds
        tol = self._tolerance if self.method == "COBYLA" else None
        try:
            scipy_result = scipy_optimize.minimize(
                objective,
                initial_point,
                method=self.method,
                tol=tol,
                options={k: v for k, v in options.items() if k != "tol"},
                **kwargs,
            )
        except Exception as exc:  # pragma: no cover - defensive
            raise OptimizationError(
                f"scipy optimizer {self.method!r} failed: {exc}"
            ) from exc

        # Prefer the best point actually evaluated: some methods report the
        # last iterate, which for a noisy / flat landscape can be slightly
        # worse than the best sample seen.
        best_value = objective.best_value
        best_point = objective.best_point
        reported_value = float(scipy_result.fun)
        if best_value is not None and best_value < reported_value:
            optimal_value, optimal_parameters = best_value, best_point
        else:
            optimal_value, optimal_parameters = reported_value, np.asarray(
                scipy_result.x, dtype=float
            )

        num_iterations = int(getattr(scipy_result, "nit", 0) or 0)
        return OptimizationResult(
            optimal_parameters=optimal_parameters,
            optimal_value=optimal_value,
            num_function_calls=objective.num_evaluations,
            num_iterations=num_iterations,
            converged=bool(scipy_result.success),
            optimizer_name=self.name,
            message=str(scipy_result.message),
        )


class LBFGSBOptimizer(ScipyOptimizer):
    """Quasi-Newton L-BFGS-B (gradient via finite differences)."""

    method = "L-BFGS-B"


class NelderMeadOptimizer(ScipyOptimizer):
    """Derivative-free Nelder-Mead simplex method."""

    method = "Nelder-Mead"


class SLSQPOptimizer(ScipyOptimizer):
    """Sequential least-squares programming."""

    method = "SLSQP"


class CobylaOptimizer(ScipyOptimizer):
    """Constrained optimization by linear approximation (derivative-free)."""

    method = "COBYLA"
