"""Tests for repro.prediction.dataset."""

import pytest

from repro.config import paper_setup
from repro.exceptions import DatasetError
from repro.graphs.ensembles import erdos_renyi_ensemble
from repro.prediction.dataset import (
    DatasetGenerationConfig,
    DepthEntry,
    GraphRecord,
    TrainingDataset,
)
from repro.qaoa.parameters import QAOAParameters


class TestDatasetGenerationConfig:
    def test_defaults_match_paper(self):
        config = DatasetGenerationConfig()
        assert config.depths == (1, 2, 3, 4, 5, 6)
        assert config.num_restarts == 20
        assert config.optimizer == "L-BFGS-B"
        assert config.tolerance == 1e-6

    def test_depth_one_required(self):
        with pytest.raises(DatasetError):
            DatasetGenerationConfig(depths=(2, 3))

    def test_invalid_depths_rejected(self):
        with pytest.raises(DatasetError):
            DatasetGenerationConfig(depths=())
        with pytest.raises(DatasetError):
            DatasetGenerationConfig(depths=(0, 1))

    def test_invalid_restarts_rejected(self):
        with pytest.raises(DatasetError):
            DatasetGenerationConfig(num_restarts=0)

    def test_paper_parameter_count_is_13860(self):
        assert paper_setup().num_optimal_parameters == 13860


class TestGeneratedDataset:
    def test_records_cover_all_depths(self, tiny_dataset):
        assert tiny_dataset.depths == [1, 2, 3]
        for record in tiny_dataset:
            assert record.depths == [1, 2, 3]

    def test_parameters_are_canonical(self, tiny_dataset):
        from repro.config import BETA_SYMMETRY_PERIOD

        for record in tiny_dataset:
            for depth in record.depths:
                params = record.entry(depth).parameters
                assert all(0.0 <= b < BETA_SYMMETRY_PERIOD + 1e-9 for b in params.betas)

    def test_expectation_below_optimum(self, tiny_dataset):
        for record in tiny_dataset:
            for depth in record.depths:
                entry = record.entry(depth)
                assert entry.expectation <= entry.max_cut_value + 1e-9
                assert 0.0 < entry.approximation_ratio <= 1.0 + 1e-9

    def test_ar_improves_with_depth_on_average(self, tiny_dataset):
        shallow = [record.entry(1).approximation_ratio for record in tiny_dataset]
        deep = [record.entry(3).approximation_ratio for record in tiny_dataset]
        assert sum(deep) / len(deep) >= sum(shallow) / len(shallow) - 1e-6

    def test_num_optimal_parameters(self, tiny_dataset):
        expected_per_graph = 2 * (1 + 2 + 3)
        assert tiny_dataset.num_optimal_parameters == expected_per_graph * len(tiny_dataset)

    def test_missing_depth_raises(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset[0].entry(6)

    def test_generation_respects_warm_seed_flag(self):
        ensemble = erdos_renyi_ensemble(2, num_nodes=5, edge_probability=0.6, seed=3)
        config = DatasetGenerationConfig(
            depths=(1, 2), num_restarts=1, warm_seed_from_lower_depth=False
        )
        dataset = TrainingDataset.generate(ensemble, config, seed=0)
        assert dataset.num_graphs == 2

    def test_progress_callback_invoked(self):
        ensemble = erdos_renyi_ensemble(2, num_nodes=5, edge_probability=0.6, seed=4)
        calls = []
        TrainingDataset.generate(
            ensemble,
            DatasetGenerationConfig(depths=(1,), num_restarts=1),
            seed=0,
            progress_callback=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 2), (2, 2)]


class TestSplitAndPersistence:
    def test_train_test_split(self, tiny_dataset):
        train, test = tiny_dataset.train_test_split(0.34, seed=0)
        assert len(train) + len(test) == len(tiny_dataset)
        train_names = {record.graph.name for record in train}
        test_names = {record.graph.name for record in test}
        assert not train_names & test_names

    def test_invalid_split_fraction(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.train_test_split(0.0)

    def test_json_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        tiny_dataset.save(path)
        loaded = TrainingDataset.load(path)
        assert loaded.num_graphs == tiny_dataset.num_graphs
        assert loaded.depths == tiny_dataset.depths
        original = tiny_dataset[0].entry(2).parameters.to_vector()
        restored = loaded[0].entry(2).parameters.to_vector()
        assert list(original) == pytest.approx(list(restored))

    def test_malformed_payload_raises(self):
        with pytest.raises(DatasetError):
            TrainingDataset.from_dict({"records": []})

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            TrainingDataset([])

    def test_record_roundtrip(self, tiny_dataset):
        record = tiny_dataset[0]
        rebuilt = GraphRecord.from_dict(record.to_dict())
        assert rebuilt.graph == record.graph
        assert rebuilt.depths == record.depths

    def test_depth_entry_roundtrip(self):
        entry = DepthEntry(
            depth=2,
            parameters=QAOAParameters((0.1, 0.2), (0.3, 0.4)),
            expectation=3.0,
            max_cut_value=4.0,
            num_function_calls=120,
        )
        rebuilt = DepthEntry.from_dict(entry.to_dict())
        assert rebuilt == entry
        assert rebuilt.approximation_ratio == pytest.approx(0.75)
