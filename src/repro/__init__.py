"""repro — reproduction of ML-accelerated QAOA (Alam et al., DATE 2020).

The package is organised as a set of substrates (quantum simulator, graph /
MaxCut tooling, classical optimizers, regression models) and the paper's core
contribution on top of them (QAOA solver, ML parameter predictor, two-level
accelerated flow, experiment harness).

Quickstart
----------
>>> from repro.graphs import erdos_renyi_graph, MaxCutProblem
>>> from repro.acceleration import TwoLevelQAOARunner
>>> graph = erdos_renyi_graph(8, 0.5, seed=7)
>>> problem = MaxCutProblem(graph)
>>> runner = TwoLevelQAOARunner.with_default_predictor(seed=7)
>>> outcome = runner.run(problem, target_depth=3)
>>> outcome.approximation_ratio > 0.8
True
"""

from repro.version import __version__
from repro.exceptions import (
    CircuitError,
    ConfigurationError,
    DatasetError,
    GraphError,
    ModelError,
    OptimizationError,
    ReproError,
    SimulationError,
)
from repro.config import PaperSetup, paper_setup
from repro.execution import (
    Backend,
    ExecutionContext,
    ExecutionDeprecationWarning,
    available_backends,
    get_backend,
    register_backend,
)

__all__ = [
    "Backend",
    "ExecutionContext",
    "ExecutionDeprecationWarning",
    "available_backends",
    "get_backend",
    "register_backend",
    "__version__",
    "ReproError",
    "CircuitError",
    "SimulationError",
    "GraphError",
    "OptimizationError",
    "ModelError",
    "DatasetError",
    "ConfigurationError",
    "PaperSetup",
    "paper_setup",
]
