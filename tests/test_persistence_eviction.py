"""Persistent-cache eviction: capacity bound, TTL, and chaos safety."""

import json
import os
import time

import pytest

from repro.exceptions import ConfigurationError
from repro.resilience.faults import Fault, FaultInjector, FaultPlan
from repro.service.metrics import ServiceMetrics
from repro.service.persistence import PersistentResultCache
from repro.service import SolverService

NO_SLEEP = lambda _: None  # noqa: E731


def plain_cache(directory, **kwargs):
    """A cache storing JSON-able payloads directly (no QAOAResult)."""
    return PersistentResultCache(
        directory, serialize=lambda r: r, deserialize=lambda p: p, **kwargs
    )


def backdate(cache, key, mtime):
    path = cache._path(key)
    os.utime(path, (mtime, mtime))


class TestConfiguration:
    def test_bad_max_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            PersistentResultCache("unused", max_entries=0)

    def test_bad_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            PersistentResultCache("unused", ttl_seconds=0.0)

    def test_unbounded_by_default(self, tmp_path):
        cache = plain_cache(tmp_path)
        assert cache.max_entries is None
        assert cache.ttl_seconds is None


class TestCapacityBound:
    def test_oldest_entries_evicted_after_put(self, tmp_path):
        metrics = ServiceMetrics()
        cache = plain_cache(tmp_path, max_entries=3, metrics=metrics)
        for index in range(5):
            assert cache.put(f"k{index}", {"value": index})
            backdate(cache, f"k{index}", 1000.0 + index)
        assert len(cache) == 3
        assert cache.get("k0") is None
        assert cache.get("k1") is None
        for index in (2, 3, 4):
            assert cache.get(f"k{index}") == {"value": index}
        assert metrics.to_dict()["caches"]["persistent"]["evictions"] == 2

    def test_eviction_happens_synchronously(self, tmp_path):
        cache = plain_cache(tmp_path, max_entries=1)
        cache.put("a", 1)
        time.sleep(0.01)  # distinct mtimes
        cache.put("b", 2)
        assert len(cache) == 1
        assert cache.get("b") == 2


class TestTTL:
    def test_expired_entry_is_a_miss_and_removed(self, tmp_path):
        clock = [1000.0]
        cache = plain_cache(tmp_path, ttl_seconds=60.0, clock=lambda: clock[0])
        cache.put("k", {"v": 1})
        backdate(cache, "k", 1000.0)
        assert cache.get("k") == {"v": 1}
        clock[0] = 1061.0
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_fresh_entries_survive_expiry_of_others(self, tmp_path):
        clock = [1000.0]
        cache = plain_cache(tmp_path, ttl_seconds=60.0, clock=lambda: clock[0])
        cache.put("old", 1)
        cache.put("new", 2)
        backdate(cache, "old", 900.0)
        backdate(cache, "new", 1000.0)
        assert cache.get("old") is None
        assert cache.get("new") == 2

    def test_sweep_reclaims_without_reads(self, tmp_path):
        clock = [1000.0]
        cache = plain_cache(tmp_path, ttl_seconds=60.0, clock=lambda: clock[0])
        for index in range(4):
            cache.put(f"k{index}", index)
            backdate(cache, f"k{index}", 1000.0)
        clock[0] = 2000.0
        assert cache.sweep() == 4
        assert len(cache) == 0

    def test_sweep_without_ttl_is_a_noop(self, tmp_path):
        cache = plain_cache(tmp_path)
        cache.put("k", 1)
        assert cache.sweep() == 0
        assert cache.get("k") == 1


class TestEvictionChaos:
    """Eviction must never corrupt surviving entries, even under fault fire."""

    def test_survivors_bit_identical_after_capacity_churn(self, tmp_path):
        # Write through a bounded cache with injected write corruption on
        # some entries; every *readable* survivor must be bit-identical to
        # what was stored, and corrupted ones quarantine — never poison
        # their neighbours.
        plan = FaultPlan(
            [Fault("cache.write", 3, "corrupt"), Fault("cache.write", 7, "corrupt")]
        )
        injector = FaultInjector(plan, sleep=NO_SLEEP)
        metrics = ServiceMetrics()
        cache = plain_cache(
            tmp_path, max_entries=6, metrics=metrics, fault_injector=injector
        )
        expected = {}
        for index in range(10):
            payload = {"index": index, "blob": "x" * index}
            cache.put(f"k{index}", payload)
            backdate(cache, f"k{index}", 1000.0 + index)
            expected[f"k{index}"] = payload
        # Capacity 6: at most the 6 youngest files remain on disk.
        assert len(cache) <= 6
        survivors = 0
        for index in range(4, 10):
            value = cache.get(f"k{index}")
            if value is not None:
                assert value == expected[f"k{index}"]
                survivors += 1
        # The two corrupted writes can only account for two losses.
        assert survivors >= 4
        snapshot = metrics.to_dict()["caches"]["persistent"]
        assert snapshot["evictions"] == 4
        # Raw disk check: after the read loop quarantined the corrupted
        # entry, every file still on disk decodes as clean JSON — eviction
        # never leaves a torn file behind.
        for path in tmp_path.glob("*.result.json"):
            json.loads(path.read_text(encoding="utf-8"))

    def test_ttl_expiry_under_read_faults_keeps_neighbours(self, tmp_path):
        clock = [1000.0]
        injector = FaultInjector(
            FaultPlan([Fault("cache.read", 0, "transient")]), sleep=NO_SLEEP
        )
        cache = plain_cache(
            tmp_path,
            ttl_seconds=60.0,
            clock=lambda: clock[0],
            fault_injector=injector,
        )
        cache.put("a", {"v": "a"})
        cache.put("b", {"v": "b"})
        backdate(cache, "a", 900.0)  # expired
        backdate(cache, "b", 1000.0)  # fresh
        assert cache.get("a") is None  # TTL removal, before the read fault
        assert cache.get("b") is None  # injected transient read fault: miss
        assert cache.get("b") == {"v": "b"}  # next read is clean


class TestServicePassthrough:
    def test_service_builds_bounded_persistent_tier(self, tmp_path):
        with SolverService(
            max_workers=1,
            persistent_cache_dir=tmp_path,
            persistent_max_entries=5,
            persistent_ttl_seconds=120.0,
        ) as service:
            tier = service.results.persistent
            assert tier.max_entries == 5
            assert tier.ttl_seconds == 120.0
