"""A native (pure-NumPy) Nelder-Mead simplex optimizer.

Provided as a SciPy-independent fallback and as a cross-check for the
function-call accounting of the SciPy adapter: both implementations must show
the same qualitative behaviour for the two-level flow to be credible as
"optimizer-agnostic".
"""

from __future__ import annotations


import numpy as np

from repro.optimizers.base import Bounds, CountingObjective, OptimizationResult, Optimizer


class NativeNelderMead(Optimizer):
    """Downhill-simplex minimization (Nelder & Mead, 1965).

    Uses the standard reflection / expansion / contraction / shrink moves with
    the adaptive coefficients recommended for moderate dimensionality.
    """

    def __init__(
        self,
        *,
        tolerance: float = 1e-6,
        max_iterations: int = 5000,
        initial_step: float = 0.1,
        record_history: bool = False,
    ):
        super().__init__(
            "Nelder-Mead (native)",
            tolerance=tolerance,
            max_iterations=max_iterations,
            record_history=record_history,
        )
        if initial_step <= 0:
            raise ValueError(f"initial_step must be positive, got {initial_step}")
        self._initial_step = float(initial_step)

    def _clip(self, point: np.ndarray, bounds: Bounds) -> np.ndarray:
        if bounds is None:
            return point
        lows = np.array([low for low, _ in bounds])
        highs = np.array([high for _, high in bounds])
        return np.clip(point, lows, highs)

    def _minimize(
        self,
        objective: CountingObjective,
        initial_point: np.ndarray,
        bounds: Bounds,
    ) -> OptimizationResult:
        dim = initial_point.size
        alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5

        # Initial simplex: the start point plus one perturbed vertex per axis.
        simplex = [self._clip(initial_point.copy(), bounds)]
        for axis in range(dim):
            vertex = initial_point.copy()
            step = self._initial_step if vertex[axis] == 0.0 else self._initial_step * (
                1.0 + abs(vertex[axis])
            )
            vertex[axis] += step
            simplex.append(self._clip(vertex, bounds))
        simplex = np.array(simplex)
        values = np.array([objective(vertex) for vertex in simplex])

        iterations = 0
        converged = False
        while iterations < self._max_iterations:
            order = np.argsort(values)
            simplex, values = simplex[order], values[order]

            if abs(values[-1] - values[0]) <= self._tolerance:
                converged = True
                break

            centroid = simplex[:-1].mean(axis=0)
            worst = simplex[-1]

            reflected = self._clip(centroid + alpha * (centroid - worst), bounds)
            reflected_value = objective(reflected)

            if values[0] <= reflected_value < values[-2]:
                simplex[-1], values[-1] = reflected, reflected_value
            elif reflected_value < values[0]:
                expanded = self._clip(centroid + gamma * (reflected - centroid), bounds)
                expanded_value = objective(expanded)
                if expanded_value < reflected_value:
                    simplex[-1], values[-1] = expanded, expanded_value
                else:
                    simplex[-1], values[-1] = reflected, reflected_value
            else:
                contracted = self._clip(centroid + rho * (worst - centroid), bounds)
                contracted_value = objective(contracted)
                if contracted_value < values[-1]:
                    simplex[-1], values[-1] = contracted, contracted_value
                else:
                    best = simplex[0]
                    for index in range(1, dim + 1):
                        simplex[index] = self._clip(
                            best + sigma * (simplex[index] - best), bounds
                        )
                        values[index] = objective(simplex[index])
            iterations += 1

        order = np.argsort(values)
        simplex, values = simplex[order], values[order]
        return OptimizationResult(
            optimal_parameters=simplex[0],
            optimal_value=float(values[0]),
            num_function_calls=objective.num_evaluations,
            num_iterations=iterations,
            converged=converged,
            optimizer_name=self.name,
            message="simplex spread below tolerance" if converged else "iteration limit",
        )
