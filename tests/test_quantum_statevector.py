"""Tests for repro.quantum.statevector."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.quantum.gates import cnot_matrix, h_matrix, x_matrix
from repro.quantum.statevector import Statevector, tensor_product


class TestConstruction:
    def test_zero_state(self):
        state = Statevector.zero_state(3)
        assert state.num_qubits == 3
        assert state.probability("000") == pytest.approx(1.0)

    def test_from_label(self):
        state = Statevector.from_label("10")
        assert state.probability("10") == pytest.approx(1.0)
        assert state.probability("01") == pytest.approx(0.0)

    def test_uniform_superposition(self):
        state = Statevector.uniform_superposition(2)
        np.testing.assert_allclose(state.probabilities(), [0.25] * 4, atol=1e-12)

    def test_invalid_length_raises(self):
        with pytest.raises(SimulationError):
            Statevector([1.0, 0.0, 0.0])

    def test_unnormalised_raises(self):
        with pytest.raises(SimulationError):
            Statevector([1.0, 1.0])

    def test_invalid_label_raises(self):
        with pytest.raises(SimulationError):
            Statevector.from_label("2a")


class TestGateApplication:
    def test_x_flips_qubit(self):
        state = Statevector.zero_state(2)
        state.apply_matrix(x_matrix(), (0,))
        assert state.probability("01") == pytest.approx(1.0)

    def test_hadamard_then_cnot_gives_bell_state(self):
        state = Statevector.zero_state(2)
        state.apply_matrix(h_matrix(), (1,))
        state.apply_matrix(cnot_matrix(), (1, 0))
        probabilities = state.probabilities()
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[3] == pytest.approx(0.5)

    def test_norm_preserved_by_unitaries(self):
        state = Statevector.uniform_superposition(3)
        state.apply_matrix(h_matrix(), (2,))
        assert state.is_normalized()

    def test_wrong_matrix_size_raises(self):
        state = Statevector.zero_state(2)
        with pytest.raises(SimulationError):
            state.apply_matrix(np.eye(4), (0,))

    def test_duplicate_qubits_raise(self):
        state = Statevector.zero_state(2)
        with pytest.raises(SimulationError):
            state.apply_matrix(cnot_matrix(), (0, 0))

    def test_apply_diagonal(self):
        state = Statevector.uniform_superposition(1)
        state.apply_diagonal(np.array([1.0, -1.0]))
        assert state.data[1] == pytest.approx(-state.data[0])


class TestMeasurementStatistics:
    def test_probabilities_sum_to_one(self):
        state = Statevector.uniform_superposition(4)
        assert state.probabilities().sum() == pytest.approx(1.0)

    def test_expectation_diagonal(self):
        state = Statevector.from_label("1")
        assert state.expectation_diagonal(np.array([0.0, 5.0])) == pytest.approx(5.0)

    def test_sample_counts_total(self, rng):
        state = Statevector.uniform_superposition(2)
        counts = state.sample_counts(100, rng=rng)
        assert sum(counts.values()) == 100
        assert all(len(key) == 2 for key in counts)

    def test_sample_deterministic_state(self, rng):
        state = Statevector.from_label("101")
        counts = state.sample_counts(50, rng=rng)
        assert counts == {"101": 50}

    def test_most_probable_bitstring(self):
        assert Statevector.from_label("011").most_probable_bitstring() == "011"

    def test_invalid_shots_raise(self):
        with pytest.raises(SimulationError):
            Statevector.zero_state(1).sample_counts(0)


class TestInnerProductsAndCopies:
    def test_inner_product_orthogonal(self):
        a = Statevector.from_label("0")
        b = Statevector.from_label("1")
        assert a.inner(b) == pytest.approx(0.0)

    def test_fidelity_self(self):
        state = Statevector.uniform_superposition(2)
        assert state.fidelity(state) == pytest.approx(1.0)

    def test_equiv_up_to_global_phase(self):
        state = Statevector.uniform_superposition(2)
        phased = Statevector(state.data * np.exp(1j * 0.7), validate=False)
        assert state.equiv(phased)
        assert not (state == phased)

    def test_copy_is_independent(self):
        state = Statevector.zero_state(1)
        clone = state.copy()
        clone.apply_matrix(x_matrix(), (0,))
        assert state.probability("0") == pytest.approx(1.0)

    def test_size_mismatch_raises(self):
        with pytest.raises(SimulationError):
            Statevector.zero_state(1).inner(Statevector.zero_state(2))

    def test_tensor_product(self):
        combined = tensor_product(
            Statevector.from_label("1"), Statevector.from_label("0")
        )
        assert combined.num_qubits == 2
        assert combined.probability("10") == pytest.approx(1.0)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Statevector.zero_state(1))
