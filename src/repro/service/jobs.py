"""Job handles for the asynchronous solver service.

A :class:`JobHandle` is the client's view of one submitted solve: a
future-like object with :meth:`~JobHandle.result` / :attr:`~JobHandle.status`
/ :meth:`~JobHandle.cancel`.  The service fulfils handles through the
internal ``_mark_*`` transitions; clients only read.

Lifecycle::

    PENDING --> RUNNING --> COMPLETED
       |           |------> FAILED
       |------> CANCELLED

Cancellation is cooperative: a job can only be cancelled while it is still
queued (``PENDING``).  Once a worker thread has started the solve there is
no safe way to interrupt it, so :meth:`JobHandle.cancel` returns ``False``
for running jobs and the solve runs to completion.
"""

from __future__ import annotations

import itertools
import threading
from enum import Enum
from typing import Any, Callable, Optional

from repro.exceptions import JobCancelledError, JobTimeoutError, ServiceError

__all__ = ["JobHandle", "JobStatus"]

_JOB_IDS = itertools.count(1)


class JobStatus(str, Enum):
    """Lifecycle states of a service job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        """Whether the state is final (result/exception is available)."""
        return self in (JobStatus.COMPLETED, JobStatus.FAILED, JobStatus.CANCELLED)


class JobHandle:
    """Future-like handle to one submitted solve.

    Parameters
    ----------
    cache_key:
        The solve-result cache key this job computes (also the coalescing
        key: identical in-flight submissions share one computation).
    clock:
        Monotonic time source used for the latency timestamps.
    """

    def __init__(self, cache_key: Optional[str], clock: Callable[[], float]):
        self.job_id = next(_JOB_IDS)
        self.cache_key = cache_key
        self._clock = clock
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._status = JobStatus.PENDING
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        #: Monotonic timestamps, populated as the job progresses.
        self.submitted_at = clock()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: True when this handle was fulfilled without running a fresh solve.
        self.from_cache = False
        #: True when this handle was attached to an identical in-flight job.
        self.deduplicated = False
        #: Number of transient-failure retries the run needed.
        self.retries = 0
        #: True when the solve resumed from a saved checkpoint instead of
        #: starting from scratch (checkpointed submissions only).
        self.resumed = False

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    @property
    def status(self) -> JobStatus:
        """The job's current lifecycle state."""
        with self._lock:
            return self._status

    @property
    def done(self) -> bool:
        """Whether the job has reached a terminal state."""
        return self._done.is_set()

    def cancel(self) -> bool:
        """Cancel the job if it has not started running.

        Returns ``True`` when the job transitioned to ``CANCELLED``; ``False``
        when it already started (cancellation is cooperative — running solves
        are never interrupted) or already finished.
        """
        with self._lock:
            if self._status is not JobStatus.PENDING:
                return False
            self._status = JobStatus.CANCELLED
            self.finished_at = self._clock()
        self._done.set()
        return True

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the job finishes and return its result.

        Raises
        ------
        JobTimeoutError
            If the wait exceeds *timeout* seconds (the job keeps running).
        JobCancelledError
            If the job was cancelled.
        Exception
            Whatever the solve itself raised, re-raised verbatim.
        """
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                f"job {self.job_id} did not finish within {timeout} s "
                f"(status: {self.status.value})"
            )
        with self._lock:
            if self._status is JobStatus.CANCELLED:
                raise JobCancelledError(f"job {self.job_id} was cancelled")
            if self._exception is not None:
                raise self._exception
            return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The exception the job failed with (``None`` on success).

        Like :meth:`result`, blocks until the job finishes; raises
        :class:`~repro.exceptions.JobTimeoutError` on wait expiry and
        :class:`~repro.exceptions.JobCancelledError` for cancelled jobs.
        """
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                f"job {self.job_id} did not finish within {timeout} s "
                f"(status: {self.status.value})"
            )
        with self._lock:
            if self._status is JobStatus.CANCELLED:
                raise JobCancelledError(f"job {self.job_id} was cancelled")
            return self._exception

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until terminal (or *timeout*); returns whether it finished."""
        return self._done.wait(timeout)

    # ------------------------------------------------------------------
    # Service-side transitions
    # ------------------------------------------------------------------
    def _mark_running(self) -> bool:
        """PENDING -> RUNNING.  Returns ``False`` if the job was cancelled."""
        with self._lock:
            if self._status is JobStatus.CANCELLED:
                return False
            if self._status is not JobStatus.PENDING:
                raise ServiceError(
                    f"job {self.job_id} cannot start from state {self._status.value}"
                )
            self._status = JobStatus.RUNNING
            self.started_at = self._clock()
            return True

    def _mark_completed(self, result: Any) -> None:
        with self._lock:
            if self._status.is_terminal:
                return
            self._status = JobStatus.COMPLETED
            self._result = result
            self.finished_at = self._clock()
        self._done.set()

    def _mark_failed(self, exception: BaseException) -> None:
        with self._lock:
            if self._status.is_terminal:
                return
            self._status = JobStatus.FAILED
            self._exception = exception
            self.finished_at = self._clock()
        self._done.set()

    def __repr__(self) -> str:
        return (
            f"JobHandle(id={self.job_id}, status={self.status.value!r}, "
            f"key={self.cache_key!r})"
        )
