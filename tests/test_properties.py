"""Property-based tests (hypothesis) for the core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BETA_SYMMETRY_PERIOD, GAMMA_MAX
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.maxcut import MaxCutProblem
from repro.graphs.model import Graph
from repro.ml.kernels import RBFKernel
from repro.ml.metrics import mean_squared_error, r2_score, root_mean_squared_error
from repro.qaoa.fast_backend import FastMaxCutEvaluator
from repro.qaoa.parameters import QAOAParameters, interpolate_parameters
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.simulator import StatevectorSimulator
from repro.utils.statistics import pearson_correlation

angles = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
small_depths = st.integers(min_value=1, max_value=4)


def build_problem(num_nodes: int, edge_bits: int) -> MaxCutProblem:
    """Deterministically build a connected-enough problem from a bit-mask."""
    pairs = [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
    edges = [pairs[i] for i in range(len(pairs)) if (edge_bits >> i) & 1]
    if not edges:
        edges = [pairs[0]]
    return MaxCutProblem(Graph(num_nodes, edges))


class TestQuantumInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        gamma=angles,
        beta=angles,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_circuits_preserve_norm(self, gamma, beta, seed):
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(3)
        for _ in range(4):
            qubit = int(rng.integers(0, 3))
            circuit.rx(gamma, qubit).rz(beta, qubit)
            other = int(rng.integers(0, 3))
            if other != qubit:
                circuit.cx(qubit, other)
        state = StatevectorSimulator().run(circuit)
        assert state.norm() == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(gamma=angles, beta=angles)
    def test_qaoa_expectation_within_bounds(self, gamma, beta):
        problem = build_problem(5, 0b1011011)
        evaluator = FastMaxCutEvaluator(problem)
        value = evaluator.expectation(QAOAParameters((gamma,), (beta,)))
        assert -1e-9 <= value <= problem.max_cut_value() + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(gamma=angles, beta=angles)
    def test_beta_symmetry_period(self, gamma, beta):
        problem = build_problem(5, 0b1110101)
        evaluator = FastMaxCutEvaluator(problem)
        base = evaluator.expectation(QAOAParameters((gamma,), (beta,)))
        shifted = evaluator.expectation(
            QAOAParameters((gamma,), (beta + BETA_SYMMETRY_PERIOD,))
        )
        assert shifted == pytest.approx(base, abs=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(gamma=angles, beta=angles)
    def test_gamma_two_pi_period_unweighted(self, gamma, beta):
        problem = build_problem(4, 0b111111)
        evaluator = FastMaxCutEvaluator(problem)
        base = evaluator.expectation(QAOAParameters((gamma,), (beta,)))
        shifted = evaluator.expectation(QAOAParameters((gamma + GAMMA_MAX,), (beta,)))
        assert shifted == pytest.approx(base, abs=1e-8)


class TestParameterProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        depth=small_depths,
        values=st.lists(angles, min_size=8, max_size=8),
    )
    def test_vector_roundtrip(self, depth, values):
        gammas = tuple(values[:depth])
        betas = tuple(values[4 : 4 + depth])
        params = QAOAParameters(gammas, betas)
        rebuilt = QAOAParameters.from_vector(params.to_vector())
        np.testing.assert_allclose(rebuilt.to_vector(), params.to_vector())

    @settings(max_examples=30, deadline=None)
    @given(
        depth=small_depths,
        new_depth=small_depths,
        values=st.lists(angles, min_size=8, max_size=8),
    )
    def test_interpolation_stays_within_range(self, depth, new_depth, values):
        params = QAOAParameters(tuple(values[:depth]), tuple(values[4 : 4 + depth]))
        resampled = interpolate_parameters(params, new_depth)
        assert resampled.depth == new_depth
        assert min(resampled.gammas) >= min(params.gammas) - 1e-12
        assert max(resampled.gammas) <= max(params.gammas) + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(angles, min_size=6, max_size=6))
    def test_canonicalization_idempotent(self, values):
        params = QAOAParameters(tuple(values[:3]), tuple(values[3:]))
        once = params.canonicalized()
        twice = once.canonicalized()
        np.testing.assert_allclose(once.to_vector(), twice.to_vector(), atol=1e-10)


class TestGraphProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        num_nodes=st.integers(min_value=2, max_value=6),
        edge_bits=st.integers(min_value=1, max_value=2**15 - 1),
        bits=st.integers(min_value=0, max_value=63),
    )
    def test_cut_complement_invariance(self, num_nodes, edge_bits, bits):
        problem = build_problem(num_nodes, edge_bits)
        assignment = [(bits >> k) & 1 for k in range(num_nodes)]
        complement = [1 - b for b in assignment]
        assert problem.cut_value(assignment) == pytest.approx(
            problem.cut_value(complement)
        )

    @settings(max_examples=25, deadline=None)
    @given(
        num_nodes=st.integers(min_value=2, max_value=6),
        edge_bits=st.integers(min_value=1, max_value=2**15 - 1),
    )
    def test_max_cut_bounded_by_total_weight(self, num_nodes, edge_bits):
        problem = build_problem(num_nodes, edge_bits)
        assert 0.0 < problem.max_cut_value() <= problem.graph.total_weight() + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_er_graphs_valid(self, seed):
        graph = erdos_renyi_graph(7, 0.5, seed=seed)
        assert graph.num_nodes == 7
        assert 1 <= graph.num_edges <= 21
        for u, v, weight in graph.edges:
            assert u < v
            assert weight == 1.0


class TestMLProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=3,
            max_size=20,
        )
    )
    def test_rmse_is_sqrt_mse(self, data):
        y_true = np.array(data)
        y_pred = y_true + 1.0
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(
            math.sqrt(mean_squared_error(y_true, y_pred))
        )

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=4,
            max_size=20,
        ),
        shift=st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
    def test_r2_never_exceeds_one(self, data, shift):
        y_true = np.array(data)
        y_pred = y_true + shift
        assert r2_score(y_true, y_pred) <= 1.0 + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        size=st.integers(min_value=3, max_value=12),
    )
    def test_rbf_gram_matrix_psd(self, seed, size):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(size, 2))
        gram = RBFKernel(length_scale=0.7)(points, points)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() >= -1e-8

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scale=st.floats(min_value=0.1, max_value=10.0),
        offset=st.floats(min_value=-5.0, max_value=5.0),
    )
    def test_pearson_correlation_affine_invariance(self, seed, scale, offset):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=20)
        y = rng.normal(size=20)
        base = pearson_correlation(x, y)
        transformed = pearson_correlation(x, scale * y + offset)
        assert transformed == pytest.approx(base, abs=1e-9)
