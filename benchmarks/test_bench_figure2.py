"""Benchmark: regenerate Fig. 2 — intra-depth optimal-parameter trends."""

import numpy as np

from repro.experiments.figure2 import run_figure2


def test_bench_figure2(benchmark, bench_config, bench_context):
    result = benchmark.pedantic(
        lambda: run_figure2(bench_config, bench_context, depths=(2, 4)),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    # Paper shape: within a fixed depth the optimal gamma_i increase with the
    # stage index and the optimal beta_i decrease, for most graphs.
    for row in result.trend_table:
        assert row["gamma_increasing_fraction"] >= 0.5
        assert row["beta_decreasing_fraction"] >= 0.5

    # The average stage-1 beta exceeds the average last-stage beta at the
    # deepest setting.
    deepest = max(row["depth"] for row in result.table)
    beta_first = np.mean(
        [r["beta_opt"] for r in result.table if r["depth"] == deepest and r["stage"] == 1]
    )
    beta_last = np.mean(
        [
            r["beta_opt"]
            for r in result.table
            if r["depth"] == deepest and r["stage"] == deepest
        ]
    )
    assert beta_first > beta_last
