"""Ising / QUBO formulations of MaxCut.

The MaxCut appendix of the paper formulates the problem as maximising
``sum_{(u,v)} w_uv (1 - s_u s_v) / 2`` over spins ``s in {-1, +1}``.  This
module provides the spin-model view (fields ``h``, couplings ``J``, constant
offset) and the standard QUBO-to-Ising change of variables, so the library can
also ingest problems specified as QUBO matrices.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.model import Graph
from repro.graphs.maxcut import MaxCutProblem


class IsingModel:
    """An Ising Hamiltonian ``E(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j + c``."""

    def __init__(
        self,
        num_spins: int,
        fields: Dict[int, float] = None,
        couplings: Dict[Tuple[int, int], float] = None,
        constant: float = 0.0,
    ):
        if num_spins <= 0:
            raise GraphError(f"num_spins must be positive, got {num_spins}")
        self._num_spins = num_spins
        self._fields = {int(k): float(v) for k, v in (fields or {}).items()}
        self._couplings: Dict[Tuple[int, int], float] = {}
        for (i, j), value in (couplings or {}).items():
            i, j = int(i), int(j)
            if i == j:
                raise GraphError("Ising couplings must connect distinct spins")
            key = (min(i, j), max(i, j))
            self._couplings[key] = self._couplings.get(key, 0.0) + float(value)
        self._constant = float(constant)
        for index in list(self._fields) + [i for pair in self._couplings for i in pair]:
            if not 0 <= index < num_spins:
                raise GraphError(f"spin index {index} out of range")

    @property
    def num_spins(self) -> int:
        """Number of spins."""
        return self._num_spins

    @property
    def fields(self) -> Dict[int, float]:
        """Local fields ``h_i`` (copy)."""
        return dict(self._fields)

    @property
    def couplings(self) -> Dict[Tuple[int, int], float]:
        """Pairwise couplings ``J_ij`` with ``i < j`` (copy)."""
        return dict(self._couplings)

    @property
    def constant(self) -> float:
        """Constant energy offset."""
        return self._constant

    def energy(self, spins: Sequence[int]) -> float:
        """Energy of a spin configuration (entries must be ±1)."""
        spins = np.asarray(list(spins), dtype=int)
        if spins.size != self._num_spins or not np.all(np.abs(spins) == 1):
            raise GraphError(
                f"spins must be {self._num_spins} values in {{-1, +1}}, got {spins!r}"
            )
        energy = self._constant
        for index, field in self._fields.items():
            energy += field * spins[index]
        for (i, j), coupling in self._couplings.items():
            energy += coupling * spins[i] * spins[j]
        return float(energy)

    def energy_from_bits(self, bits: Sequence[int]) -> float:
        """Energy of a 0/1 assignment using ``s = 1 - 2*x``."""
        bits = np.asarray(list(bits), dtype=int)
        return self.energy(1 - 2 * bits)

    def ground_state(self) -> Tuple[float, np.ndarray]:
        """Brute-force minimum energy and one minimising configuration."""
        best_energy = None
        best_spins = None
        for index in range(2**self._num_spins):
            bits = np.array(
                [(index >> k) & 1 for k in range(self._num_spins)], dtype=int
            )
            spins = 1 - 2 * bits
            energy = self.energy(spins)
            if best_energy is None or energy < best_energy:
                best_energy, best_spins = energy, spins
        return float(best_energy), best_spins

    def __repr__(self) -> str:
        return (
            f"IsingModel(num_spins={self._num_spins}, fields={len(self._fields)}, "
            f"couplings={len(self._couplings)})"
        )


def maxcut_to_ising(problem: MaxCutProblem) -> IsingModel:
    """Ising model whose energy is the *negated* cut value.

    Minimising the returned model's energy is equivalent to maximising the
    cut: ``cut(x) = sum w_uv (1 - s_u s_v) / 2`` so
    ``-cut(x) = sum (w_uv / 2) s_u s_v - sum w_uv / 2``.
    """
    couplings = {}
    constant = 0.0
    for u, v, weight in problem.graph.edges:
        couplings[(u, v)] = weight / 2.0
        constant -= weight / 2.0
    return IsingModel(problem.num_qubits, couplings=couplings, constant=constant)


def qubo_to_ising(qubo: np.ndarray) -> IsingModel:
    """Convert a QUBO matrix ``x^T Q x`` (0/1 variables) to an Ising model.

    Uses the substitution ``x_i = (1 - s_i) / 2``.  The matrix is symmetrised
    first; diagonal entries act as linear terms.
    """
    qubo = np.asarray(qubo, dtype=float)
    if qubo.ndim != 2 or qubo.shape[0] != qubo.shape[1]:
        raise GraphError(f"QUBO matrix must be square, got shape {qubo.shape}")
    num_vars = qubo.shape[0]
    symmetric = 0.5 * (qubo + qubo.T)

    fields: Dict[int, float] = {}
    couplings: Dict[Tuple[int, int], float] = {}
    constant = 0.0
    for i in range(num_vars):
        q_ii = symmetric[i, i]
        constant += q_ii / 2.0
        fields[i] = fields.get(i, 0.0) - q_ii / 2.0
        for j in range(i + 1, num_vars):
            q_ij = 2.0 * symmetric[i, j]
            if q_ij == 0.0:
                continue
            constant += q_ij / 4.0
            fields[i] = fields.get(i, 0.0) - q_ij / 4.0
            fields[j] = fields.get(j, 0.0) - q_ij / 4.0
            couplings[(i, j)] = couplings.get((i, j), 0.0) + q_ij / 4.0
    fields = {k: v for k, v in fields.items() if v != 0.0}
    return IsingModel(num_vars, fields=fields, couplings=couplings, constant=constant)


def maxcut_qubo(graph: Graph) -> np.ndarray:
    """QUBO matrix whose value equals the (negated) cut of a 0/1 assignment.

    ``-cut(x) = sum_{(u,v)} w_uv (2 x_u x_v - x_u - x_v)`` so minimising the
    QUBO maximises the cut.
    """
    num_nodes = graph.num_nodes
    qubo = np.zeros((num_nodes, num_nodes), dtype=float)
    for u, v, weight in graph.edges:
        qubo[u, v] += weight
        qubo[v, u] += weight
        qubo[u, u] -= weight
        qubo[v, v] -= weight
    return qubo
