"""Tests for repro.ml.preprocessing."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.preprocessing import MinMaxScaler, StandardScaler, train_test_split


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(loc=5.0, scale=2.0, size=(100, 3))
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_transform_roundtrip(self, rng):
        data = rng.normal(size=(20, 2))
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data, atol=1e-12
        )

    def test_constant_column_untouched(self):
        data = np.column_stack([np.ones(5), np.arange(5.0)])
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(ModelError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_count_mismatch_raises(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(5, 2)))
        with pytest.raises(ModelError):
            scaler.transform(rng.normal(size=(5, 3)))


class TestMinMaxScaler:
    def test_unit_interval(self, rng):
        data = rng.uniform(-10, 10, size=(50, 2))
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0

    def test_inverse_transform_roundtrip(self, rng):
        data = rng.uniform(size=(10, 3))
        scaler = MinMaxScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data, atol=1e-12
        )

    def test_transform_before_fit_raises(self):
        with pytest.raises(ModelError):
            MinMaxScaler().transform(np.ones((2, 2)))


class TestTrainTestSplit:
    def test_partition_sizes(self, rng):
        features = rng.normal(size=(50, 2))
        targets = rng.normal(size=50)
        x_train, x_test, y_train, y_test = train_test_split(
            features, targets, train_fraction=0.2, seed=0
        )
        assert x_train.shape == (10, 2)
        assert x_test.shape == (40, 2)
        assert y_train.shape == (10,)
        assert y_test.shape == (40,)

    def test_no_overlap_and_full_coverage(self, rng):
        features = np.arange(20, dtype=float).reshape(-1, 1)
        targets = np.arange(20, dtype=float)
        x_train, x_test, _, _ = train_test_split(features, targets, seed=1)
        combined = np.sort(np.concatenate([x_train[:, 0], x_test[:, 0]]))
        np.testing.assert_allclose(combined, np.arange(20))

    def test_deterministic_with_seed(self, rng):
        features = rng.normal(size=(30, 2))
        targets = rng.normal(size=30)
        first = train_test_split(features, targets, seed=5)[0]
        second = train_test_split(features, targets, seed=5)[0]
        np.testing.assert_allclose(first, second)

    def test_invalid_fraction_raises(self, rng):
        with pytest.raises(ModelError):
            train_test_split(np.ones((4, 1)), np.ones(4), train_fraction=1.0)

    def test_sample_mismatch_raises(self):
        with pytest.raises(ModelError):
            train_test_split(np.ones((4, 1)), np.ones(5))
