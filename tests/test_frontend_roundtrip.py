"""QASM round-trip property: ``parse_qasm(to_qasm(c))`` is bit-identical.

Reuses the randomized circuit generator of the PTM differential harness —
the same gate pool that stresses the compiled engine also stresses the
exporter's float formatting and the parser's constant folding.  Exported
floats go through ``repr`` (shortest round-trip form), so the re-imported
circuit must produce the *exact same bytes* of statevector, not merely a
close one.
"""

import numpy as np
import pytest

from repro.frontend import ingest, parse_qasm, to_circuit, to_qasm
from repro.frontend.passes import lower_to_native
from repro.quantum import QuantumCircuit
from repro.quantum.parameter import Parameter
from repro.quantum.simulator import StatevectorSimulator

from test_ptm_differential import _random_circuit


class TestRandomizedRoundTrip:
    @pytest.mark.parametrize("seed", range(25))
    def test_statevectors_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 6))
        depth = int(rng.integers(1, 30))
        circuit = _random_circuit(rng, num_qubits, depth)

        reimported = ingest(to_qasm(circuit))
        simulator = StatevectorSimulator()
        original = simulator.run(circuit).data
        rebuilt = simulator.run(reimported).data
        assert np.array_equal(original, rebuilt)

    @pytest.mark.parametrize("seed", range(5))
    def test_double_round_trip_is_stable(self, seed):
        # to_qasm(parse(to_qasm(c))) must be byte-stable after one cycle.
        rng = np.random.default_rng(1000 + seed)
        circuit = _random_circuit(rng, 3, 12)
        once = to_qasm(ingest(to_qasm(circuit)))
        twice = to_qasm(ingest(once))
        assert once == twice


class TestParametricRoundTrip:
    def test_unbound_parameters_survive_export(self):
        theta = Parameter("theta")
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.rz(theta, 0)
        circuit.rx(2.0 * theta + 0.5, 1)
        reimported = ingest(to_qasm(circuit))
        assert [p.name for p in reimported.parameters] == ["theta"]
        simulator = StatevectorSimulator()
        for value in (-1.3, 0.0, 2.25):
            original = simulator.run(circuit, {theta: value}).data
            rebuilt = simulator.run(
                reimported, {reimported.parameters[0]: value}
            ).data
            assert np.array_equal(original, rebuilt)

    def test_measurements_round_trip(self):
        source = (
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg q[2];\ncreg c[2];\nh q[0];\nmeasure q -> c;\n"
        )
        ir = parse_qasm(source)
        again = parse_qasm(to_qasm(ir))
        assert again.measurements == ir.measurements
        assert again.cregs == ir.cregs

    def test_lowered_circuit_round_trips(self):
        # Export after lowering: native-only gate stream, still importable.
        ir = parse_qasm(
            "OPENQASM 2.0;\nqreg q[3];\nccx q[0], q[1], q[2];\n"
        )
        lowered = lower_to_native(ir)
        circuit = to_circuit(lowered)
        rebuilt = ingest(to_qasm(circuit))
        simulator = StatevectorSimulator()
        assert np.array_equal(
            simulator.run(circuit).data, simulator.run(rebuilt).data
        )
