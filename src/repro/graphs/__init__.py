"""Graph substrate: graph model, generators, MaxCut problems, Ising mapping."""

from repro.graphs.model import Graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    weighted_erdos_renyi_graph,
)
from repro.graphs.maxcut import MaxCutProblem
from repro.graphs.ising import IsingModel, maxcut_to_ising, qubo_to_ising
from repro.graphs.ensembles import GraphEnsemble, erdos_renyi_ensemble, regular_ensemble

__all__ = [
    "Graph",
    "erdos_renyi_graph",
    "weighted_erdos_renyi_graph",
    "random_regular_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "MaxCutProblem",
    "IsingModel",
    "maxcut_to_ising",
    "qubo_to_ising",
    "GraphEnsemble",
    "erdos_renyi_ensemble",
    "regular_ensemble",
]
