"""The built-in execution backends: ``fast`` (FWHT) and ``circuit`` (gates).

Each backend is a :class:`~repro.execution.registry.Backend` — capability
flags plus a :meth:`compile` that lowers one ``(problem, depth)`` pair into
a *program* object with a uniform evaluation surface (exact scalar / batch
expectations, exact probability rows, one-trajectory noisy probabilities,
and — where supported — exact density-matrix probabilities).  The
:class:`~repro.qaoa.cost.ExpectationEvaluator` drives programs exclusively
through that surface, so adding an execution target (array-API/GPU kernels,
a remote device) is a :func:`~repro.execution.registry.register_backend`
call, not another wave of ``if backend == "fast"`` branches.

Importing this module registers both backends; the registry also imports it
lazily on first lookup, so ``repro.execution`` works stand-alone.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.execution.registry import Backend, register_backend
from repro.graphs.maxcut import MaxCutProblem
from repro.qaoa.circuit_builder import build_parametric_qaoa_circuit
from repro.qaoa.fast_backend import FAST_BACKEND_MAX_QUBITS, FastMaxCutEvaluator
from repro.qaoa.parameters import QAOAParameters
from repro.quantum.density import DensityMatrixSimulator
from repro.quantum.noise import NoiseModel
from repro.quantum.simulator import StatevectorSimulator
from repro.utils.rng import RandomState


class _FastProgram:
    """The MaxCut-specialised FWHT evaluator behind the program surface."""

    def __init__(self, problem: MaxCutProblem):
        self._evaluator = FastMaxCutEvaluator(problem)

    def expectation(self, parameters: QAOAParameters) -> float:
        return self._evaluator.expectation(parameters)

    def expectation_batch(self, matrix: np.ndarray) -> np.ndarray:
        return self._evaluator.expectation_batch(matrix)

    def probabilities(self, parameters: QAOAParameters) -> np.ndarray:
        return self._evaluator.statevector(parameters).probabilities()

    def probability_rows(self, block: np.ndarray) -> np.ndarray:
        # The FWHT sweep produces (dim, batch) amplitude columns; the
        # batch-major probability rows are a cheap real-matrix view.
        columns = self._evaluator.statevector_batch(block)
        return (columns.real**2 + columns.imag**2).T

    def noisy_probabilities(
        self,
        parameters: QAOAParameters,
        noise_model: NoiseModel,
        rng: RandomState,
    ) -> np.ndarray:
        state = self._evaluator.noisy_statevector(parameters, noise_model, rng)
        return state.probabilities()

    def density_probabilities(self, parameters, noise_model):
        raise SimulationError(
            "the fast backend has no density-matrix oracle; "
            "ExecutionContext validation should have rejected density=True"
        )


class _CircuitProgram:
    """The compiled gate-level circuit behind the program surface.

    The parametric QAOA circuit is built **once**; every evaluation re-binds
    the simulator's compiled program, and whole parameter batches run
    through vectorised ``(dim, batch)`` sweeps.  In density mode the same
    circuit also drives the exact :class:`DensityMatrixSimulator` oracle.
    """

    def __init__(
        self,
        problem: MaxCutProblem,
        depth: int,
        *,
        density: bool = False,
        ptm: bool = True,
    ):
        self._simulator = StatevectorSimulator()
        self._density_simulator: Optional[DensityMatrixSimulator] = None
        if density:
            # Raises for registers beyond the density ceiling (~12 qubits)
            # at construction instead of first evaluation.  ``ptm`` selects
            # the compiled superoperator tier for noisy runs (the backend's
            # ``supports_ptm`` capability); ``ptm=False`` keeps the
            # per-instruction Kraus oracle.
            self._density_simulator = DensityMatrixSimulator(compiled=ptm)
            if problem.num_qubits > self._density_simulator.max_qubits:
                raise ConfigurationError(
                    f"density=True is limited to "
                    f"{self._density_simulator.max_qubits} qubits "
                    f"(the density matrix costs 4^n memory), the problem "
                    f"has {problem.num_qubits}"
                )
        self._hamiltonian = problem.cost_hamiltonian()
        circuit, gammas, betas = build_parametric_qaoa_circuit(problem, depth)
        self._circuit = circuit
        flat_index = {g: i for i, g in enumerate(gammas)}
        flat_index.update({b: depth + i for i, b in enumerate(betas)})
        # Column permutation mapping the flat [gammas..., betas...] vector
        # onto the circuit's first-appearance parameter order.
        self._column_order = np.array(
            [flat_index[p] for p in circuit.parameters], dtype=np.intp
        )

    def _values(self, parameters: QAOAParameters) -> np.ndarray:
        return parameters.to_vector()[self._column_order]

    def expectation(self, parameters: QAOAParameters) -> float:
        return self._simulator.expectation(
            self._circuit, self._hamiltonian, self._values(parameters)
        )

    def expectation_batch(self, matrix: np.ndarray) -> np.ndarray:
        return self._simulator.expectation_batch(
            self._circuit, self._hamiltonian, matrix[:, self._column_order]
        )

    def probabilities(self, parameters: QAOAParameters) -> np.ndarray:
        return self._simulator.run(self._circuit, self._values(parameters)).probabilities()

    def probability_rows(self, block: np.ndarray) -> np.ndarray:
        # Stay in the engine's native row layout (skipping run_batch's full
        # complex-copy transpose).
        amplitude_rows = self._simulator._run_batch_rows(
            self._circuit, block[:, self._column_order]
        )
        return amplitude_rows.real**2 + amplitude_rows.imag**2

    def noisy_probabilities(
        self,
        parameters: QAOAParameters,
        noise_model: NoiseModel,
        rng: RandomState,
    ) -> np.ndarray:
        state = self._simulator.run(
            self._circuit, self._values(parameters), noise_model=noise_model, rng=rng
        )
        return state.probabilities()

    def density_probabilities(
        self, parameters: QAOAParameters, noise_model: Optional[NoiseModel]
    ) -> np.ndarray:
        rho = self._density_simulator.run(
            self._circuit, self._values(parameters), noise_model=noise_model
        )
        return rho.probabilities()


class FastBackend(Backend):
    """The MaxCut-specialised FWHT backend (``"fast"``)."""

    name = "fast"
    supports_density = False
    supports_noise = True
    supports_batch = True
    max_qubits = FAST_BACKEND_MAX_QUBITS

    def compile(self, problem: MaxCutProblem, depth: int, *, density: bool = False):
        if density:
            raise ConfigurationError(
                "the fast backend cannot run the density-matrix oracle; "
                "use backend='circuit'"
            )
        return _FastProgram(problem)


class CircuitBackend(Backend):
    """The compiled gate-level circuit backend (``"circuit"``)."""

    name = "circuit"
    supports_density = True
    supports_noise = True
    supports_ptm = True
    supports_batch = True
    supports_ingest = True  # runs arbitrary repro.frontend-imported circuits
    supports_continuous = True  # hosts repro.dynamics Schrödinger/Lindblad evolution
    max_qubits = None  # limited by memory (and ~12 qubits in density mode)

    def compile(self, problem: MaxCutProblem, depth: int, *, density: bool = False):
        return _CircuitProgram(problem, depth, density=density, ptm=self.supports_ptm)


register_backend(FastBackend())
register_backend(CircuitBackend())
