"""Crash-safe on-disk document primitives shared by the durable stores.

Both durable tiers — :class:`~repro.resilience.checkpoint.FileCheckpointStore`
and :class:`~repro.service.persistence.PersistentResultCache` — persist
JSON documents with the same guarantees, implemented once here:

* **Atomic visibility** — documents are written to a temporary file in the
  destination directory, flushed and fsync'd, then moved into place with
  :func:`os.replace`.  A crash mid-write leaves either the old entry or a
  stray temp file, never a half-written entry.
* **Self-verifying entries** — every document embeds a format tag, a schema
  version, its logical key and a SHA-256 checksum of the canonical payload
  JSON.  :func:`decode_document` re-derives the checksum and validates all
  four, raising :class:`CorruptEntryError` on any mismatch, so silent disk
  corruption (or a truncated write on a non-atomic filesystem) is detected
  rather than deserialized.
* **Quarantine** — unreadable entries are moved aside
  (:func:`quarantine_file`) instead of deleted, preserving the evidence
  while guaranteeing the bad entry is never read again.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Optional

from repro.exceptions import ReproError

__all__ = [
    "CorruptEntryError",
    "atomic_write_bytes",
    "checksum_payload",
    "decode_document",
    "encode_document",
    "quarantine_file",
]


class CorruptEntryError(ReproError):
    """An on-disk entry failed checksum/version/key validation."""


def checksum_payload(payload: Any) -> str:
    """SHA-256 over the canonical (sorted, compact) JSON of *payload*."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_document(payload: Any, *, format: str, version: int, key: str) -> bytes:
    """Serialize *payload* into a self-verifying document (UTF-8 JSON bytes)."""
    document = {
        "format": format,
        "version": int(version),
        "key": key,
        "checksum": checksum_payload(payload),
        "payload": payload,
    }
    return json.dumps(document, sort_keys=True).encode("utf-8")


def decode_document(
    data: bytes, *, format: str, version: int, key: Optional[str] = None
) -> Any:
    """Parse and validate a document produced by :func:`encode_document`.

    Returns the embedded payload.  Raises :class:`CorruptEntryError` when
    the bytes do not parse, the format/version differs, the stored key does
    not match *key* (when given), or the checksum does not re-derive.
    """
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorruptEntryError(f"entry does not parse as JSON: {error}") from error
    if not isinstance(document, dict):
        raise CorruptEntryError(
            f"entry root must be an object, got {type(document).__name__}"
        )
    if document.get("format") != format:
        raise CorruptEntryError(
            f"entry format {document.get('format')!r} != expected {format!r}"
        )
    if document.get("version") != int(version):
        raise CorruptEntryError(
            f"entry schema version {document.get('version')!r} != expected {version}"
        )
    if key is not None and document.get("key") != key:
        raise CorruptEntryError(
            f"entry key {document.get('key')!r} does not match requested key"
        )
    if "payload" not in document or "checksum" not in document:
        raise CorruptEntryError("entry is missing its payload or checksum")
    expected = checksum_payload(document["payload"])
    if document["checksum"] != expected:
        raise CorruptEntryError(
            f"entry checksum {document['checksum']!r} does not match payload"
        )
    return document["payload"]


_TMP_COUNTER = threading.Lock()
_tmp_serial = 0


def _next_serial() -> int:
    global _tmp_serial
    with _TMP_COUNTER:
        _tmp_serial += 1
        return _tmp_serial


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write *data* to *path* atomically (temp file + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}-{_next_serial()}"
    try:
        with open(tmp, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # replace failed or raised before running
            try:
                tmp.unlink()
            except OSError:
                pass


def quarantine_file(path: Path) -> Optional[Path]:
    """Move a corrupted entry into a sibling ``quarantine/`` directory.

    Returns the new location, or ``None`` when the move itself failed (the
    caller still treats the entry as unreadable either way).
    """
    path = Path(path)
    target_dir = path.parent / "quarantine"
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / f"{path.name}.{os.getpid()}-{_next_serial()}"
        os.replace(path, target)
        return target
    except OSError:
        return None
