"""QAOA parameter container and sampling.

A depth-``p`` QAOA circuit has ``2p`` angles: the phase-separation angles
``gamma_1 .. gamma_p`` and the mixing angles ``beta_1 .. beta_p``.  Following
the paper (Sec. III-A) random initializations are drawn from
``gamma_i in [0, 2*pi]`` and ``beta_i in [0, pi]``.

The flat vector layout used throughout the library (and by the ML predictor's
response vector) is ``[gamma_1, .., gamma_p, beta_1, .., beta_p]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.config import BETA_MAX, BETA_SYMMETRY_PERIOD, GAMMA_MAX
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class QAOAParameters:
    """Immutable set of QAOA angles for one circuit instance."""

    gammas: Tuple[float, ...]
    betas: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "gammas", tuple(float(g) for g in self.gammas))
        object.__setattr__(self, "betas", tuple(float(b) for b in self.betas))
        if len(self.gammas) != len(self.betas):
            raise ConfigurationError(
                f"gammas and betas must have equal length, got "
                f"{len(self.gammas)} and {len(self.betas)}"
            )
        if len(self.gammas) == 0:
            raise ConfigurationError("QAOA parameters need at least one stage")

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Circuit depth ``p`` (number of stages)."""
        return len(self.gammas)

    @property
    def num_parameters(self) -> int:
        """Total number of angles (``2p``)."""
        return 2 * self.depth

    def gamma(self, stage: int) -> float:
        """The phase-separation angle of *stage* (1-indexed, as in the paper)."""
        return self.gammas[self._stage_index(stage)]

    def beta(self, stage: int) -> float:
        """The mixing angle of *stage* (1-indexed)."""
        return self.betas[self._stage_index(stage)]

    def _stage_index(self, stage: int) -> int:
        if not 1 <= stage <= self.depth:
            raise ConfigurationError(
                f"stage must be in 1..{self.depth}, got {stage}"
            )
        return stage - 1

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_vector(self) -> np.ndarray:
        """Flat vector ``[gamma_1..gamma_p, beta_1..beta_p]``."""
        return np.array(list(self.gammas) + list(self.betas), dtype=float)

    @classmethod
    def from_vector(cls, vector: Sequence[float]) -> "QAOAParameters":
        """Inverse of :meth:`to_vector`."""
        vector = np.asarray(vector, dtype=float).reshape(-1)
        if vector.size == 0 or vector.size % 2 != 0:
            raise ConfigurationError(
                f"parameter vector length must be a positive even number, got {vector.size}"
            )
        depth = vector.size // 2
        return cls(tuple(vector[:depth]), tuple(vector[depth:]))

    def folded(self) -> "QAOAParameters":
        """Angles folded into the canonical domain (gamma mod 2*pi, beta mod pi).

        The QAOA energy for MaxCut on integer-weight graphs is periodic in
        ``gamma`` with period ``2*pi`` and in ``beta`` with period ``pi``, so
        folding does not change the expectation value.
        """
        gammas = tuple(float(np.mod(g, GAMMA_MAX)) for g in self.gammas)
        betas = tuple(float(np.mod(b, BETA_MAX)) for b in self.betas)
        return QAOAParameters(gammas, betas)

    def canonicalized(self) -> "QAOAParameters":
        """Angles mapped into the canonical fundamental domain.

        MaxCut QAOA has two exact symmetries that make optimal parameters
        ambiguous (different restarts converge to different but physically
        equivalent angle sets):

        * ``beta_i -> beta_i + pi/2`` — a global bit flip ``X^{(x) n}``
          commutes with the whole ansatz and with the cut operator, so every
          mixing angle is only defined modulo ``pi/2`` (for unweighted
          graphs the cost is also ``2*pi``-periodic in every ``gamma_i``);
        * joint time reversal ``(gamma, beta) -> (-gamma, -beta)`` — complex
          conjugation of the state leaves the (real) cost expectation
          unchanged.

        Canonicalisation folds every ``beta_i`` into ``[0, pi/2)`` and every
        ``gamma_i`` into ``[0, 2*pi)``, then applies the joint conjugation
        when ``gamma_1 > pi`` so that the first phase angle always lands in
        ``[0, pi]``.  Training the ML predictor on canonical angles is what
        makes the regression targets consistent across graphs and restarts
        (the trends of Figs. 2-3 only appear after this folding).
        """
        gammas = [_wrap(g, GAMMA_MAX) for g in self.gammas]
        betas = [_wrap(b, BETA_SYMMETRY_PERIOD) for b in self.betas]
        if gammas[0] > GAMMA_MAX / 2.0:
            gammas = [_wrap(-g, GAMMA_MAX) for g in gammas]
            betas = [_wrap(-b, BETA_SYMMETRY_PERIOD) for b in betas]
        return QAOAParameters(tuple(gammas), tuple(betas))

    def __str__(self) -> str:
        gammas = ", ".join(f"{g:.4f}" for g in self.gammas)
        betas = ", ".join(f"{b:.4f}" for b in self.betas)
        return f"QAOAParameters(p={self.depth}, gammas=[{gammas}], betas=[{betas}])"


def canonicalize_for_graph(parameters: QAOAParameters, graph) -> QAOAParameters:
    """Graph-aware canonicalization of QAOA angles.

    In addition to the graph-independent symmetries handled by
    :meth:`QAOAParameters.canonicalized`, MaxCut on a graph whose vertices all
    have *odd* degree (e.g. the 3-regular graphs of Figs. 1-3) has the extra
    exact symmetry ``gamma_i -> gamma_i + pi`` with ``beta_j -> -beta_j`` for
    every ``j >= i``.  Without fixing it, different restarts of the same
    problem land on scattered but physically equivalent angle sets and the
    regular parameter patterns the paper reports disappear.  When the graph
    has any even-degree vertex the extra reduction is skipped.

    Parameters
    ----------
    parameters:
        The angles to canonicalize.
    graph:
        The problem graph (an object exposing ``degrees()``), or ``None`` to
        apply only the graph-independent folding.
    """
    if graph is not None and all(degree % 2 == 1 for degree in graph.degrees()):
        gammas = [_wrap(g, GAMMA_MAX) for g in parameters.gammas]
        betas = list(parameters.betas)
        half_period = GAMMA_MAX / 2.0
        for i in range(parameters.depth):
            if gammas[i] >= half_period:
                gammas[i] -= half_period
                for j in range(i, parameters.depth):
                    betas[j] = -betas[j]
        parameters = QAOAParameters(tuple(gammas), tuple(betas))
    return parameters.canonicalized()


def _wrap(value: float, period: float) -> float:
    """Fold *value* into ``[0, period)``, guarding against rounding to the period."""
    wrapped = float(np.mod(value, period))
    if wrapped >= period or period - wrapped < 1e-12:
        wrapped = 0.0
    return wrapped


def parameter_bounds(depth: int) -> List[Tuple[float, float]]:
    """Box bounds for the flat parameter vector of a depth-*depth* circuit."""
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth}")
    return [(0.0, GAMMA_MAX)] * depth + [(0.0, BETA_MAX)] * depth


def random_parameters(depth: int, rng: RandomState = None) -> QAOAParameters:
    """Sample uniformly random angles from the paper's initialization domain."""
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth}")
    generator = ensure_rng(rng)
    gammas = generator.uniform(0.0, GAMMA_MAX, size=depth)
    betas = generator.uniform(0.0, BETA_MAX, size=depth)
    return QAOAParameters(tuple(gammas), tuple(betas))


def interpolate_parameters(parameters: QAOAParameters, new_depth: int) -> QAOAParameters:
    """Resample a parameter schedule onto a different depth (INTERP heuristic).

    The depth-``p`` angles are viewed as samples of a smooth schedule on
    ``[0, 1]`` and linearly interpolated onto ``new_depth`` points.  This is
    the interpolation warm start of Zhou et al. (arXiv:1812.01041), used here
    (a) as a classical non-ML initialization baseline for the ablation
    benches and (b) to seed the data-set generation with one
    schedule-consistent restart so that the recorded optima lie on the regular
    parameter family the paper observes in Figs. 2-3.
    """
    if new_depth < 1:
        raise ConfigurationError(f"new_depth must be >= 1, got {new_depth}")
    old_depth = parameters.depth
    if new_depth == old_depth:
        return parameters
    if old_depth == 1:
        gammas = tuple([parameters.gammas[0]] * new_depth)
        betas = tuple([parameters.betas[0]] * new_depth)
        return QAOAParameters(gammas, betas)
    old_positions = np.linspace(0.0, 1.0, old_depth)
    new_positions = np.linspace(0.0, 1.0, new_depth)
    gammas = np.interp(new_positions, old_positions, parameters.gammas)
    betas = np.interp(new_positions, old_positions, parameters.betas)
    return QAOAParameters(tuple(float(g) for g in gammas), tuple(float(b) for b in betas))


def linear_ramp_parameters(depth: int, *, gamma_scale: float = 0.7, beta_scale: float = 0.7) -> QAOAParameters:
    """Annealing-inspired linear-ramp initialization (non-ML baseline).

    ``gamma_i`` ramps up and ``beta_i`` ramps down across stages — the
    qualitative pattern the paper observes in optimal parameters (Fig. 2) —
    which makes this a natural heuristic baseline for the ablation benches.
    """
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth}")
    stages = np.arange(1, depth + 1)
    gammas = gamma_scale * stages / depth
    betas = beta_scale * (1.0 - (stages - 0.5) / depth)
    return QAOAParameters(tuple(gammas), tuple(betas))
