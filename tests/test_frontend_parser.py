"""The OpenQASM frontend parser: tokens, registers, macros, angles, errors."""

import math

import pytest

from repro.exceptions import QasmSyntaxError
from repro.frontend import CircuitIR, parse_qasm
from repro.frontend.ir import AffineParam
from repro.frontend.lexer import tokenize

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestLexer:
    def test_token_stream_carries_source_locations(self):
        tokens = tokenize("qreg q[3];\nh q[0];")
        assert [t.kind for t in tokens[:2]] == ["id", "id"]
        assert tokens[0].line == 1 and tokens[0].column == 1
        h = next(t for t in tokens if t.text == "h")
        assert h.line == 2 and h.column == 1

    def test_comments_are_skipped(self):
        tokens = tokenize("// a comment\nx q[0]; // trailing")
        assert [t.text for t in tokens if t.kind == "id"] == ["x", "q"]

    def test_numbers_with_exponents(self):
        tokens = tokenize("rx(1.5e-3)")
        number = next(t for t in tokens if t.kind == "number")
        assert float(number.text) == 1.5e-3

    def test_junk_character_raises_with_location(self):
        with pytest.raises(QasmSyntaxError) as excinfo:
            tokenize("h q[0];\n@")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 1

    def test_unterminated_string_raises(self):
        with pytest.raises(QasmSyntaxError):
            tokenize('include "qelib1.inc')


class TestRegistersAndGates:
    def test_minimal_program(self):
        ir = parse_qasm(HEADER + "qreg q[2];\nh q[0];\ncx q[0], q[1];")
        assert isinstance(ir, CircuitIR)
        assert ir.num_qubits == 2
        assert [(g.name, g.qubits) for g in ir.gates] == [("h", (0,)), ("cx", (0, 1))]

    def test_multiple_qregs_concatenate(self):
        ir = parse_qasm(HEADER + "qreg a[2];\nqreg b[3];\ncx a[1], b[2];")
        assert ir.num_qubits == 5
        assert ir.gates[0].qubits == (1, 4)

    def test_duplicate_register_rejected(self):
        with pytest.raises(QasmSyntaxError, match="already declared"):
            parse_qasm(HEADER + "qreg q[2];\nqreg q[3];")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm(HEADER + "qreg q[2];\nh q[2];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmSyntaxError, match="unknown gate"):
            parse_qasm(HEADER + "qreg q[1];\nfrobnicate q[0];")

    def test_register_broadcast(self):
        ir = parse_qasm(HEADER + "qreg q[3];\nh q;")
        assert [g.qubits for g in ir.gates] == [(0,), (1,), (2,)]

    def test_broadcast_size_mismatch_rejected(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm(HEADER + "qreg a[2];\nqreg b[3];\ncx a, b;")

    def test_duplicate_qubit_operands_rejected(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm(HEADER + "qreg q[2];\ncx q[0], q[0];")

    def test_builtin_U_and_CX(self):
        ir = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nU(pi/2,0,pi) q[0];\nCX q[0],q[1];")
        assert ir.gates[0].name == "u3"
        assert ir.gates[1].name == "cx"

    def test_measure_bit_and_register_forms(self):
        ir = parse_qasm(
            HEADER + "qreg q[2];\ncreg c[2];\nmeasure q[1] -> c[0];\nmeasure q -> c;"
        )
        assert ir.measurements[0] == (1, "c", 0)
        assert len(ir.measurements) == 3

    def test_barrier_is_ignored(self):
        ir = parse_qasm(HEADER + "qreg q[2];\nh q[0];\nbarrier q;\nh q[1];")
        assert len(ir.gates) == 2


class TestAngleExpressions:
    def test_constant_folding(self):
        ir = parse_qasm(
            HEADER + "qreg q[1];\nrz(pi/2) q[0];\nrz(3*pi/4) q[0];\n"
            "rz(-pi) q[0];\nrz(2^3) q[0];\nrz(cos(0)) q[0];"
        )
        values = [g.params[0] for g in ir.gates]
        assert values == [math.pi / 2, 3 * math.pi / 4, -math.pi, 8.0, 1.0]

    def test_free_identifier_becomes_parameter(self):
        ir = parse_qasm(HEADER + "qreg q[1];\nrz(theta) q[0];\nrx(2*theta+1) q[0];")
        first, second = (g.params[0] for g in ir.gates)
        assert first == AffineParam("theta")
        assert second == AffineParam("theta", coeff=2.0, const=1.0)
        assert ir.parameters == ["theta"]

    def test_mixed_parameter_sum_rejected_at_top_level(self):
        with pytest.raises(QasmSyntaxError, match="mixes parameters"):
            parse_qasm(HEADER + "qreg q[1];\nrz(alpha+beta) q[0];")

    def test_symbolic_product_rejected(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm(HEADER + "qreg q[1];\nrz(alpha*beta) q[0];")

    def test_division_by_zero_rejected(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm(HEADER + "qreg q[1];\nrz(pi/0) q[0];")


class TestGateMacros:
    SOURCE = HEADER + (
        "qreg q[3];\n"
        "gate foo(theta) a, b { cx a, b; rz(theta/2) b; }\n"
        "foo(pi) q[0], q[2];\n"
    )

    def test_macro_recorded_and_called(self):
        ir = parse_qasm(self.SOURCE)
        assert "foo" in ir.macros
        assert [(g.name, g.qubits) for g in ir.gates] == [("foo", (0, 2))]
        assert ir.gates[0].params == (math.pi,)

    def test_macro_body_free_identifier_rejected(self):
        # Inside a gate body only the formals are in scope.
        with pytest.raises(QasmSyntaxError):
            parse_qasm(HEADER + "qreg q[1];\ngate bad a { rz(zeta) a; }")

    def test_macro_wrong_arity_rejected(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm(self.SOURCE + "foo(1.0) q[0];")


class TestUnsupportedStatements:
    @pytest.mark.parametrize(
        "statement",
        ["reset q[0];", "if (c == 1) x q[0];", "opaque mystery a;"],
    )
    def test_rejected_with_clear_error(self, statement):
        source = HEADER + "qreg q[1];\ncreg c[1];\n" + statement
        with pytest.raises(QasmSyntaxError):
            parse_qasm(source)

    def test_error_message_carries_line_number(self):
        try:
            parse_qasm(HEADER + "qreg q[1];\nreset q[0];")
        except QasmSyntaxError as error:
            assert error.line == 4
            assert "line 4" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected QasmSyntaxError")
