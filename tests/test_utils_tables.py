"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import Table, from_records


class TestTableConstruction:
    def test_columns_preserved(self):
        table = Table(["a", "b"])
        assert table.columns == ["a", "b"]

    def test_empty_columns_raise(self):
        with pytest.raises(ValueError):
            Table([])

    def test_duplicate_columns_raise(self):
        with pytest.raises(ValueError):
            Table(["a", "a"])


class TestTableRows:
    def test_add_and_read_rows(self):
        table = Table(["name", "value"])
        table.add_row(name="x", value=1)
        table.add_row(name="y", value=2)
        assert len(table) == 2
        assert table.column("value") == [1, 2]

    def test_missing_column_raises(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(a=1)

    def test_extra_column_raises(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row(a=1, b=2)

    def test_unknown_column_lookup_raises(self):
        table = Table(["a"])
        with pytest.raises(KeyError):
            table.column("missing")

    def test_rows_are_copies(self):
        table = Table(["a"])
        table.add_row(a=1)
        rows = table.rows
        rows[0]["a"] = 99
        assert table.column("a") == [1]

    def test_sorted_by(self):
        table = Table(["k", "v"])
        table.add_row(k=2, v="b")
        table.add_row(k=1, v="a")
        ordered = table.sorted_by("k")
        assert ordered.column("k") == [1, 2]
        # original unchanged
        assert table.column("k") == [2, 1]


class TestRendering:
    def test_to_text_contains_all_cells(self):
        table = Table(["a", "b"])
        table.add_row(a="x", b=1.23456)
        text = table.to_text()
        assert "x" in text
        assert "1.2346" in text

    def test_to_csv_roundtrip_header(self):
        table = Table(["a", "b"])
        table.add_row(a=1, b=2)
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert "1,2" in csv_text

    def test_to_text_empty_table(self):
        table = Table(["only"])
        assert "only" in table.to_text()


class TestFromRecords:
    def test_builds_table(self):
        table = from_records([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert table.column("a") == [1, 3]

    def test_explicit_columns_subset(self):
        table = from_records([{"a": 1, "b": 2}], columns=["a"])
        assert table.columns == ["a"]

    def test_empty_records_raise(self):
        with pytest.raises(ValueError):
            from_records([])
