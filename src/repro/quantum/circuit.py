"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`Instruction` objects referencing gates
from :data:`repro.quantum.gates.GATE_REGISTRY`.  Gate parameters may be
numbers, :class:`~repro.quantum.parameter.Parameter` objects, or affine
:class:`~repro.quantum.parameter.ParameterExpression` objects; symbolic
circuits are bound to concrete angles with :meth:`QuantumCircuit.bind`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum.gates import GATE_REGISTRY, gate_matrix
from repro.quantum.parameter import Parameter, ParameterLike, bind_value, parameters_of
from repro.utils.validation import check_positive_int

Number = Union[int, float]


@dataclass(frozen=True)
class Instruction:
    """A single gate application inside a circuit."""

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[ParameterLike, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.name not in GATE_REGISTRY:
            raise CircuitError(f"unknown gate {self.name!r}")
        definition = GATE_REGISTRY[self.name]
        if len(self.qubits) != definition.num_qubits:
            raise CircuitError(
                f"gate {self.name!r} acts on {definition.num_qubits} qubit(s), "
                f"got {len(self.qubits)}"
            )
        if len(self.params) != definition.num_params:
            raise CircuitError(
                f"gate {self.name!r} takes {definition.num_params} parameter(s), "
                f"got {len(self.params)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubits in {self.qubits}")

    @property
    def free_parameters(self) -> List[Parameter]:
        """Unbound parameters referenced by this instruction."""
        found: List[Parameter] = []
        for param in self.params:
            found.extend(parameters_of(param))
        return found

    def bound_params(self, bindings: Dict[Parameter, Number]) -> Tuple[float, ...]:
        """Resolve all parameters to floats using *bindings*."""
        return tuple(bind_value(param, bindings) for param in self.params)

    def matrix(self, bindings: Dict[Parameter, Number] = None) -> np.ndarray:
        """The gate matrix, with parameters bound through *bindings*."""
        return gate_matrix(self.name, *self.bound_params(bindings or {}))


class QuantumCircuit:
    """A gate-level quantum circuit on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit"):
        check_positive_int(num_qubits, "num_qubits")
        self._num_qubits = num_qubits
        self._name = name
        self._instructions: List[Instruction] = []
        self._version = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits the circuit acts on."""
        return self._num_qubits

    @property
    def name(self) -> str:
        """Human-readable circuit name."""
        return self._name

    @property
    def instructions(self) -> List[Instruction]:
        """A copy of the instruction list."""
        return list(self._instructions)

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every :meth:`append`.

        Execution engines key their compiled-program caches on
        ``(id(circuit), circuit.version)`` so a circuit mutated after
        compilation is transparently recompiled.
        """
        return self._version

    @property
    def parameters(self) -> List[Parameter]:
        """The distinct free parameters, in first-appearance order."""
        seen: Dict[Parameter, None] = {}
        for instruction in self._instructions:
            for parameter in instruction.free_parameters:
                seen.setdefault(parameter, None)
        return list(seen.keys())

    @property
    def num_parameters(self) -> int:
        """Number of distinct free parameters."""
        return len(self.parameters)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def size(self) -> int:
        """Total gate count."""
        return len(self._instructions)

    def count_ops(self) -> Dict[str, int]:
        """Gate counts per gate name."""
        counts: Dict[str, int] = {}
        for instruction in self._instructions:
            counts[instruction.name] = counts.get(instruction.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth: the length of the longest gate-dependency chain."""
        level: List[int] = [0] * self._num_qubits
        for instruction in self._instructions:
            layer = max(level[q] for q in instruction.qubits) + 1
            for q in instruction.qubits:
                level[q] = layer
        return max(level) if level else 0

    def two_qubit_gate_count(self) -> int:
        """Number of two-qubit gates (a common NISQ cost proxy)."""
        return sum(1 for inst in self._instructions if len(inst.qubits) == 2)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, instruction: Instruction) -> "QuantumCircuit":
        """Append a pre-built instruction (validating qubit indices)."""
        for qubit in instruction.qubits:
            if not 0 <= qubit < self._num_qubits:
                raise CircuitError(
                    f"qubit {qubit} out of range for {self._num_qubits}-qubit circuit"
                )
        self._instructions.append(instruction)
        self._version += 1
        return self

    def add_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[ParameterLike] = ()
    ) -> "QuantumCircuit":
        """Append gate *name* acting on *qubits* with *params*."""
        return self.append(Instruction(name, tuple(qubits), tuple(params)))

    # Convenience wrappers -------------------------------------------------
    def id(self, qubit: int) -> "QuantumCircuit":
        """Identity gate (useful as an explicit no-op)."""
        return self.add_gate("id", (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        """Pauli-X gate."""
        return self.add_gate("x", (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Y gate."""
        return self.add_gate("y", (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Z gate."""
        return self.add_gate("z", (qubit,))

    def h(self, qubit: int) -> "QuantumCircuit":
        """Hadamard gate."""
        return self.add_gate("h", (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        """S (phase) gate."""
        return self.add_gate("s", (qubit,))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """S-dagger gate."""
        return self.add_gate("sdg", (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate."""
        return self.add_gate("t", (qubit,))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """T-dagger gate."""
        return self.add_gate("tdg", (qubit,))

    def rx(self, theta: ParameterLike, qubit: int) -> "QuantumCircuit":
        """X-axis rotation ``exp(-i theta X / 2)``."""
        return self.add_gate("rx", (qubit,), (theta,))

    def ry(self, theta: ParameterLike, qubit: int) -> "QuantumCircuit":
        """Y-axis rotation ``exp(-i theta Y / 2)``."""
        return self.add_gate("ry", (qubit,), (theta,))

    def rz(self, theta: ParameterLike, qubit: int) -> "QuantumCircuit":
        """Z-axis rotation ``exp(-i theta Z / 2)``."""
        return self.add_gate("rz", (qubit,), (theta,))

    def p(self, theta: ParameterLike, qubit: int) -> "QuantumCircuit":
        """Phase gate ``diag(1, e^{i theta})``."""
        return self.add_gate("p", (qubit,), (theta,))

    def u3(
        self, theta: ParameterLike, phi: ParameterLike, lam: ParameterLike, qubit: int
    ) -> "QuantumCircuit":
        """Generic single-qubit rotation."""
        return self.add_gate("u3", (qubit,), (theta, phi, lam))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-NOT gate."""
        return self.add_gate("cx", (control, target))

    # The paper's circuit diagrams use the name CNOT.
    cnot = cx

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z gate."""
        return self.add_gate("cz", (control, target))

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """SWAP gate."""
        return self.add_gate("swap", (qubit_a, qubit_b))

    def crz(self, theta: ParameterLike, control: int, target: int) -> "QuantumCircuit":
        """Controlled-RZ gate."""
        return self.add_gate("crz", (control, target), (theta,))

    def rzz(self, theta: ParameterLike, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """ZZ interaction ``exp(-i theta ZZ / 2)``."""
        return self.add_gate("rzz", (qubit_a, qubit_b), (theta,))

    def rxx(self, theta: ParameterLike, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """XX interaction ``exp(-i theta XX / 2)``."""
        return self.add_gate("rxx", (qubit_a, qubit_b), (theta,))

    # ------------------------------------------------------------------
    # Composition and transformation
    # ------------------------------------------------------------------
    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit running ``self`` followed by *other*."""
        if other.num_qubits != self._num_qubits:
            raise CircuitError(
                "cannot compose circuits with different qubit counts "
                f"({self._num_qubits} vs {other.num_qubits})"
            )
        combined = QuantumCircuit(self._num_qubits, name=f"{self._name}+{other.name}")
        for instruction in self._instructions:
            combined.append(instruction)
        for instruction in other._instructions:
            combined.append(instruction)
        return combined

    def bind(
        self, bindings: Union[Dict[Parameter, Number], Sequence[Number]]
    ) -> "QuantumCircuit":
        """Return a copy with free parameters replaced by concrete values.

        *bindings* may be a ``{Parameter: value}`` mapping or a flat sequence
        matching :attr:`parameters` in order.
        """
        if not isinstance(bindings, dict):
            values = list(bindings)
            parameters = self.parameters
            if len(values) != len(parameters):
                raise CircuitError(
                    f"expected {len(parameters)} parameter values, got {len(values)}"
                )
            bindings = dict(zip(parameters, values))
        missing = [p.name for p in self.parameters if p not in bindings]
        if missing:
            raise CircuitError(f"missing bindings for parameters {missing}")
        bound = QuantumCircuit(self._num_qubits, name=self._name)
        for instruction in self._instructions:
            params = instruction.bound_params(bindings)
            bound.append(Instruction(instruction.name, instruction.qubits, params))
        return bound

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (gates reversed and inverted).

        Only gates whose inverse is expressible in the registry (self-inverse
        gates, named inverses such as S/S-dagger, and rotations whose inverse
        is the negated angle) are supported; the circuit must be fully bound.
        """
        inverted = QuantumCircuit(self._num_qubits, name=f"{self._name}_dg")
        for instruction in reversed(self._instructions):
            if instruction.free_parameters:
                raise CircuitError("cannot invert a circuit with unbound parameters")
            definition = GATE_REGISTRY[instruction.name]
            if definition.self_inverse:
                inverted.append(instruction)
            elif definition.inverse_name is not None:
                inverted.add_gate(definition.inverse_name, instruction.qubits)
            elif definition.negate_params_on_inverse:
                params = tuple(-float(p) for p in instruction.params)
                inverted.add_gate(instruction.name, instruction.qubits, params)
            else:
                raise CircuitError(f"gate {instruction.name!r} has no known inverse")
        return inverted

    def to_qasm(self) -> str:
        """Export this circuit as OpenQASM-style text.

        Delegates to :func:`repro.frontend.emit.to_qasm`; the exported source
        re-imports through :func:`repro.frontend.parse_qasm` with a
        bit-identical instruction stream.
        """
        from repro.frontend.emit import to_qasm

        return to_qasm(self)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self._name!r}, num_qubits={self._num_qubits}, "
            f"size={len(self._instructions)}, parameters={self.num_parameters})"
        )
