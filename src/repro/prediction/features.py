"""Feature and response extraction for the parameter predictor.

Following Sec. II-D of the paper, the two-level predictor uses exactly three
features:

1. ``gamma1OPT(p=1)`` — the optimal phase-separation angle of the depth-1
   instance of the problem,
2. ``beta1OPT(p=1)`` — the optimal mixing angle of the depth-1 instance,
3. ``p_t`` — the target circuit depth.

The response is the flat ``2 * p_t`` parameter vector of the target-depth
instance (``[gamma_1 .. gamma_pt, beta_1 .. beta_pt]``).  The hierarchical
extension (Sec. I(d)) additionally feeds the optimal parameters of an
intermediate depth.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.prediction.dataset import GraphRecord, TrainingDataset

#: Number of features of the two-level approach (gamma1, beta1, target depth).
NUM_TWO_LEVEL_FEATURES = 3


def two_level_feature_vector(record: GraphRecord, target_depth: int) -> np.ndarray:
    """The paper's 3-feature vector ``[gamma1OPT(p=1), beta1OPT(p=1), p_t]``."""
    if target_depth < 2:
        raise DatasetError(
            f"the two-level flow targets depths >= 2, got {target_depth}"
        )
    base = record.entry(1).parameters
    return np.array([base.gammas[0], base.betas[0], float(target_depth)])


def hierarchical_feature_vector(
    record: GraphRecord, intermediate_depth: int, target_depth: int
) -> np.ndarray:
    """Feature vector for the hierarchical (three-level) predictor.

    Concatenates the depth-1 optimum, the full optimal parameter vector of the
    intermediate depth, and the target depth.
    """
    if not 1 < intermediate_depth < target_depth:
        raise DatasetError(
            "hierarchical features require 1 < intermediate_depth < target_depth, "
            f"got intermediate={intermediate_depth}, target={target_depth}"
        )
    base = record.entry(1).parameters
    intermediate = record.entry(intermediate_depth).parameters
    return np.concatenate(
        [
            [base.gammas[0], base.betas[0]],
            intermediate.to_vector(),
            [float(target_depth)],
        ]
    )


def response_vector(record: GraphRecord, target_depth: int) -> np.ndarray:
    """Flat optimal parameter vector of the target-depth instance."""
    return record.entry(target_depth).parameters.to_vector()


def stage_response(
    record: GraphRecord, depth: int, stage: int, kind: str
) -> float:
    """A single response variable (``gamma_i`` or ``beta_i`` at *depth*).

    *kind* is ``"gamma"`` or ``"beta"``; *stage* is 1-indexed as in the paper.
    """
    parameters = record.entry(depth).parameters
    if kind == "gamma":
        return parameters.gamma(stage)
    if kind == "beta":
        return parameters.beta(stage)
    raise DatasetError(f"kind must be 'gamma' or 'beta', got {kind!r}")


def pooled_training_rows(
    dataset: TrainingDataset, stage: int, kind: str, depths: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Training rows for the pooled per-response model of (*stage*, *kind*).

    One row per (graph, depth) pair with ``depth >= stage``; the features are
    the two-level features with the row's depth as the target depth, and the
    response is the optimal ``gamma_stage`` / ``beta_stage`` at that depth.
    """
    features: List[np.ndarray] = []
    responses: List[float] = []
    for record in dataset:
        for depth in depths:
            if depth < max(stage, 2) or not record.has_depth(depth) or not record.has_depth(1):
                continue
            features.append(two_level_feature_vector(record, depth))
            responses.append(stage_response(record, depth, stage, kind))
    if not features:
        raise DatasetError(
            f"no training rows available for stage {stage} ({kind}); "
            f"check the data-set depths {dataset.depths}"
        )
    return np.vstack(features), np.array(responses)


def per_depth_training_rows(
    dataset: TrainingDataset, target_depth: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Training matrix for a per-depth multi-output model.

    Features are ``[gamma1OPT(p=1), beta1OPT(p=1)]`` (the depth is constant
    within the model so it is dropped); responses are the ``2 * target_depth``
    optimal angles.
    """
    features: List[np.ndarray] = []
    responses: List[np.ndarray] = []
    for record in dataset:
        if not (record.has_depth(1) and record.has_depth(target_depth)):
            continue
        base = record.entry(1).parameters
        features.append(np.array([base.gammas[0], base.betas[0]]))
        responses.append(response_vector(record, target_depth))
    if not features:
        raise DatasetError(f"no records contain both depth 1 and depth {target_depth}")
    return np.vstack(features), np.vstack(responses)
