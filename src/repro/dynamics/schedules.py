"""Annealing schedules: driver → cost interpolation paths.

An :class:`AnnealingSchedule` maps physical time ``t in [0, T]`` onto the
interpolation coordinate ``s in [0, 1]`` of the annealing Hamiltonian

.. math::

    H(t) = (1 - s(t))\\, H_{\\mathrm{driver}} + s(t)\\, H_{\\mathrm{cost}},

with ``s(0) = 0`` (pure driver) and ``s(T) = 1`` (pure cost).  Three
variants cover the usual experimental shapes:

* :class:`LinearSchedule` — the textbook linear ramp ``s = t / T``;
* :class:`PiecewiseLinearSchedule` — arbitrary monotone control points
  (pauses, fast-slow-fast ramps);
* :class:`SmoothSchedule` — the smoothstep ``s = 3u^2 - 2u^3`` with zero
  endpoint slope, which suppresses diabatic excitation at the start and
  end of the anneal.

Schedules serialise through ``to_dict``/``from_dict`` and expose a
canonical ``payload()`` so solves keyed on a schedule are content-cacheable.
:meth:`AnnealingSchedule.interpolate` pairs a schedule with concrete driver
and cost generators as an :class:`InterpolatedHamiltonian`, the
time-dependent generator :func:`repro.dynamics.evolve` integrates.

Examples
--------
>>> from repro.dynamics import AnnealingSchedule
>>> ramp = AnnealingSchedule.linear(10.0)
>>> ramp.s(0.0), ramp.s(5.0), ramp.s(10.0)
(0.0, 0.5, 1.0)
>>> smooth = AnnealingSchedule.smooth(10.0)
>>> smooth.s(5.0)
0.5
>>> AnnealingSchedule.from_dict(ramp.to_dict()) == ramp
True
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

from repro.dynamics.generators import Hamiltonian


def _validate_total_time(total_time: float) -> float:
    total_time = float(total_time)
    if not np.isfinite(total_time) or total_time <= 0.0:
        raise ConfigurationError(
            f"total_time must be finite and > 0, got {total_time}"
        )
    return total_time


class AnnealingSchedule:
    """Base class: the ``t -> s`` map of one anneal of length ``total_time``."""

    kind = "base"

    def __init__(self, total_time: float):
        self._total_time = _validate_total_time(total_time)

    # -- factories -------------------------------------------------------
    @staticmethod
    def linear(total_time: float) -> "LinearSchedule":
        """The linear ramp ``s = t / T``."""
        return LinearSchedule(total_time)

    @staticmethod
    def smooth(total_time: float) -> "SmoothSchedule":
        """The smoothstep ramp with zero endpoint slope."""
        return SmoothSchedule(total_time)

    @staticmethod
    def piecewise(points: Sequence[Tuple[float, float]]) -> "PiecewiseLinearSchedule":
        """A piecewise-linear ramp through ``(t, s)`` control points."""
        return PiecewiseLinearSchedule(points)

    # -- surface ---------------------------------------------------------
    @property
    def total_time(self) -> float:
        """The anneal length ``T``."""
        return self._total_time

    def s(self, t: float) -> float:
        """The interpolation coordinate at time *t* (clamped to ``[0, 1]``)."""
        raise NotImplementedError

    def samples(self, count: int) -> np.ndarray:
        """``count`` uniformly spaced ``(t, s)`` rows (for plots / tables)."""
        count = int(count)
        if count < 2:
            raise ConfigurationError(f"need at least 2 samples, got {count}")
        times = np.linspace(0.0, self._total_time, count)
        return np.column_stack([times, [self.s(t) for t in times]])

    def interpolate(self, driver: Hamiltonian, cost: Hamiltonian) -> "InterpolatedHamiltonian":
        """Pair this schedule with concrete driver / cost generators."""
        return InterpolatedHamiltonian(driver, cost, self)

    # -- serialisation ---------------------------------------------------
    def payload(self) -> dict:
        """Canonical content form (stable-hash friendly)."""
        return self.to_dict()

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: dict) -> "AnnealingSchedule":
        """Rebuild any schedule variant from its ``to_dict`` form."""
        kind = data.get("kind")
        if kind == "linear":
            return LinearSchedule(data["total_time"])
        if kind == "smooth":
            return SmoothSchedule(data["total_time"])
        if kind == "piecewise":
            return PiecewiseLinearSchedule(
                [(float(t), float(s)) for t, s in data["points"]]
            )
        raise ConfigurationError(
            f"unknown schedule kind {kind!r}; known: linear, smooth, piecewise"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, AnnealingSchedule):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(repr(sorted(self.to_dict().items(), key=str)))

    def _clamp(self, t: float) -> float:
        return min(max(float(t), 0.0), self._total_time)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(total_time={self._total_time:.4g})"


class LinearSchedule(AnnealingSchedule):
    """The textbook linear ramp ``s(t) = t / T``."""

    kind = "linear"

    def s(self, t: float) -> float:
        return self._clamp(t) / self._total_time

    def to_dict(self) -> dict:
        return {"kind": "linear", "total_time": self._total_time}


class SmoothSchedule(AnnealingSchedule):
    """Smoothstep ramp ``s = 3u^2 - 2u^3`` (``u = t / T``), zero endpoint slope."""

    kind = "smooth"

    def s(self, t: float) -> float:
        u = self._clamp(t) / self._total_time
        return u * u * (3.0 - 2.0 * u)

    def to_dict(self) -> dict:
        return {"kind": "smooth", "total_time": self._total_time}


class PiecewiseLinearSchedule(AnnealingSchedule):
    """Linear interpolation through monotone ``(t, s)`` control points.

    The first point must be ``(0, 0)`` and the last ``(T, 1)``; times must
    be strictly increasing and ``s`` values monotone non-decreasing in
    ``[0, 1]`` (pauses — repeated ``s`` — are allowed; going backwards is
    not an anneal).
    """

    kind = "piecewise"

    def __init__(self, points: Sequence[Tuple[float, float]]):
        table = [(float(t), float(s)) for t, s in points]
        if len(table) < 2:
            raise ConfigurationError(
                f"need at least 2 control points, got {len(table)}"
            )
        times = np.array([t for t, _ in table])
        values = np.array([s for _, s in table])
        if not np.all(np.isfinite(times)) or not np.all(np.isfinite(values)):
            raise ConfigurationError("control points must be finite")
        if np.any(np.diff(times) <= 0.0):
            raise ConfigurationError("control-point times must be strictly increasing")
        if abs(times[0]) > 1e-15 or abs(values[0]) > 1e-15:
            raise ConfigurationError(
                f"the first control point must be (0, 0), got {table[0]}"
            )
        if abs(values[-1] - 1.0) > 1e-15:
            raise ConfigurationError(
                f"the last control point must reach s=1, got {table[-1]}"
            )
        if np.any(np.diff(values) < 0.0) or np.any(values < -1e-15) or np.any(values > 1.0 + 1e-15):
            raise ConfigurationError(
                "s values must be monotone non-decreasing within [0, 1]"
            )
        super().__init__(times[-1])
        self._times = times
        self._values = values

    @property
    def points(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(zip(self._times.tolist(), self._values.tolist()))

    def s(self, t: float) -> float:
        return float(np.interp(self._clamp(t), self._times, self._values))

    def to_dict(self) -> dict:
        return {
            "kind": "piecewise",
            "total_time": self._total_time,
            "points": [[t, s] for t, s in self.points],
        }

    def __repr__(self) -> str:
        return (
            f"PiecewiseLinearSchedule(points={len(self._times)}, "
            f"total_time={self._total_time:.4g})"
        )


class InterpolatedHamiltonian:
    """The time-dependent anneal generator ``(1 - s(t)) H_d + s(t) H_c``.

    Application never rebuilds term tables: both endpoint Hamiltonians keep
    their structured (permutation + phase) form, and each evaluation is two
    structured applies blended by the schedule weights.
    """

    time_dependent = True

    def __init__(self, driver: Hamiltonian, cost: Hamiltonian, schedule: AnnealingSchedule):
        if not isinstance(driver, Hamiltonian) or not isinstance(cost, Hamiltonian):
            raise ConfigurationError(
                f"driver and cost must be Hamiltonians, got "
                f"{type(driver).__name__} / {type(cost).__name__}"
            )
        if driver.num_qubits != cost.num_qubits:
            raise ConfigurationError(
                f"driver acts on {driver.num_qubits} qubits, cost on "
                f"{cost.num_qubits}"
            )
        if not isinstance(schedule, AnnealingSchedule):
            raise ConfigurationError(
                f"schedule must be an AnnealingSchedule, got "
                f"{type(schedule).__name__}"
            )
        self._driver = driver
        self._cost = cost
        self._schedule = schedule

    @property
    def num_qubits(self) -> int:
        return self._driver.num_qubits

    @property
    def driver(self) -> Hamiltonian:
        return self._driver

    @property
    def cost(self) -> Hamiltonian:
        return self._cost

    @property
    def schedule(self) -> AnnealingSchedule:
        return self._schedule

    @property
    def total_time(self) -> float:
        return self._schedule.total_time

    def weights(self, t: float) -> Tuple[float, float]:
        """The ``(driver, cost)`` blend at time *t*."""
        s = self._schedule.s(t)
        return (1.0 - s, s)

    def apply(self, array: np.ndarray, t: float) -> np.ndarray:
        """``H(t) @ array`` (dimension on axis 0, batches ride along)."""
        w_driver, w_cost = self.weights(t)
        if w_driver == 0.0:
            return w_cost * self._cost.apply(array)
        if w_cost == 0.0:
            return w_driver * self._driver.apply(array)
        return w_driver * self._driver.apply(array) + w_cost * self._cost.apply(array)

    def hamiltonian(self, t: float) -> Hamiltonian:
        """The frozen generator at time *t* (rebuilds tables; for analysis)."""
        w_driver, w_cost = self.weights(t)
        return Hamiltonian(
            self._driver.operator * w_driver + self._cost.operator * w_cost,
            name=f"Anneal(t={float(t):.4g})",
        )

    def __repr__(self) -> str:
        return (
            f"InterpolatedHamiltonian(num_qubits={self.num_qubits}, "
            f"schedule={self._schedule!r})"
        )


__all__ = [
    "AnnealingSchedule",
    "InterpolatedHamiltonian",
    "LinearSchedule",
    "PiecewiseLinearSchedule",
    "SmoothSchedule",
]
