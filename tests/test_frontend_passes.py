"""Decomposition passes: per-rule unitary oracles, bases, phase tracking."""

import math

import numpy as np
import pytest

from repro.exceptions import CircuitError, ConfigurationError
from repro.frontend import PassManager, parse_qasm, to_circuit
from repro.frontend.ir import CircuitIR
from repro.frontend.passes import (
    RESTRICTED_RULES,
    STANDARD_RULES,
    DecompositionPass,
    DecompositionRule,
    ValidationPass,
    lower_to_native,
)
from repro.quantum.simulator import StatevectorSimulator

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestRuleOracles:
    """Every built-in rule is pinned to its reference unitary at 1e-12."""

    @pytest.mark.parametrize("name", sorted(STANDARD_RULES))
    def test_standard_rule_matches_reference(self, name):
        deviation = STANDARD_RULES[name].verify(tol=1e-12)
        assert deviation <= 1e-12

    @pytest.mark.parametrize("name", sorted(RESTRICTED_RULES))
    def test_restricted_rule_matches_reference(self, name):
        deviation = RESTRICTED_RULES[name].verify(tol=1e-12)
        assert deviation <= 1e-12

    def test_verify_rejects_a_wrong_template(self):
        broken = DecompositionRule(
            "broken_h",
            num_qubits=1,
            num_params=0,
            template=[("x", (0,), ())],
            reference=lambda: np.array([[1, 1], [1, -1]]) / math.sqrt(2),
        )
        with pytest.raises(CircuitError, match="deviates"):
            broken.verify(tol=1e-12)


class TestLowering:
    def test_composite_gates_lower_to_registry_basis(self):
        ir = parse_qasm(
            HEADER + "qreg q[3];\nccx q[0], q[1], q[2];\ncu1(pi/4) q[0], q[1];\n"
            "ch q[0], q[1];"
        )
        lowered = lower_to_native(ir)
        from repro.quantum.gates import GATE_REGISTRY

        assert all(g.name in GATE_REGISTRY for g in lowered.gates)

    def test_restricted_basis_with_global_phase(self):
        ir = parse_qasm(HEADER + "qreg q[1];\nh q[0];\ns q[0];\nt q[0];")
        lowered = lower_to_native(ir, lower_to={"rz", "rx", "cx"})
        assert {g.name for g in lowered.gates} <= {"rz", "rx", "cx"}
        # The dropped phase is recorded: e^{i phi} U_lowered == U_source.
        simulator = StatevectorSimulator(max_qubits=4)
        source = simulator.unitary(to_circuit(lower_to_native(ir)))
        rebuilt = np.exp(1j * lowered.global_phase()) * simulator.unitary(
            to_circuit(lowered)
        )
        assert np.abs(source - rebuilt).max() < 1e-12

    def test_macro_expansion_reaches_fixpoint(self):
        source = HEADER + (
            "qreg q[2];\n"
            "gate inner a { h a; }\n"
            "gate outer a, b { inner a; cx a, b; inner b; }\n"
            "outer q[0], q[1];\n"
        )
        lowered = lower_to_native(parse_qasm(source))
        assert [g.name for g in lowered.gates] == ["h", "cx", "h"]

    def test_macro_shadows_standard_rule(self):
        # A user-defined ``ccx`` takes precedence over the library template.
        source = HEADER + (
            "qreg q[3];\n"
            "gate ccx a, b, c { cx a, c; }\n"
            "ccx q[0], q[1], q[2];\n"
        )
        lowered = lower_to_native(parse_qasm(source))
        assert [g.name for g in lowered.gates] == ["cx"]

    def test_unknown_gate_reports_basis(self):
        ir = CircuitIR(1)
        ir.add("mystery", (0,))
        with pytest.raises(CircuitError, match="no decomposition rule"):
            lower_to_native(ir)

    def test_invalid_basis_rejected(self):
        ir = parse_qasm(HEADER + "qreg q[1];\nh q[0];")
        with pytest.raises(ConfigurationError):
            lower_to_native(ir, lower_to={"rz", "nonsense"})

    def test_recursive_macro_hits_iteration_guard(self):
        loop = DecompositionRule(
            "loop", num_qubits=1, num_params=0, template=[("loop", (0,), ())]
        )
        ir = CircuitIR(1)
        ir.add("loop", (0,))
        with pytest.raises(CircuitError):
            DecompositionPass(rules={"loop": loop})(ir)


class TestValidationPass:
    def test_accepts_native_circuit(self):
        ir = parse_qasm(HEADER + "qreg q[2];\nh q[0];\ncx q[0], q[1];")
        assert ValidationPass()(ir) is ir

    def test_rejects_non_basis_gate(self):
        ir = parse_qasm(HEADER + "qreg q[1];\nh q[0];")
        with pytest.raises(CircuitError):
            ValidationPass(lower_to={"rz", "rx", "cx"})(ir)

    def test_pass_manager_chains(self):
        ir = parse_qasm(HEADER + "qreg q[2];\nch q[0], q[1];")
        manager = PassManager([DecompositionPass(), ValidationPass()])
        lowered = manager.run(ir)
        assert all(g.name != "ch" for g in lowered.gates)


class TestCacheKeys:
    def test_renamed_parameters_share_cache_key(self):
        a = parse_qasm(HEADER + "qreg q[1];\nrz(theta) q[0];")
        b = parse_qasm(HEADER + "qreg q[1];\nrz(phi) q[0];")
        assert a.cache_key() == b.cache_key()

    def test_different_angles_split_cache_key(self):
        a = parse_qasm(HEADER + "qreg q[1];\nrz(pi/2) q[0];")
        b = parse_qasm(HEADER + "qreg q[1];\nrz(pi/4) q[0];")
        assert a.cache_key() != b.cache_key()
