"""Run-time comparison between the naive and the two-level flows.

This module produces the raw material of the paper's Table I: for every
(problem, optimizer, target depth) it measures the mean/SD approximation
ratio and function-call count of the random-initialization baseline and of
the ML-initialized two-level flow, and the resulting function-call reduction
percentage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.config import DEFAULT_NUM_RESTARTS, DEFAULT_TOLERANCE
from repro.exceptions import ConfigurationError
from repro.acceleration.baseline import NaiveQAOARunner
from repro.acceleration.two_level import TwoLevelQAOARunner
from repro.execution.context import UNSET, ContextLike, resolve_execution_context
from repro.graphs.maxcut import MaxCutProblem
from repro.prediction.predictor import ParameterPredictor
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class ComparisonRecord:
    """Naive-vs-two-level measurement for one (problem, optimizer, depth)."""

    problem_name: str
    optimizer_name: str
    target_depth: int
    naive_mean_ar: float
    naive_std_ar: float
    naive_mean_fc: float
    naive_std_fc: float
    two_level_ar: float
    two_level_fc: int
    level1_fc: int
    level2_fc: int
    #: Shot budgets consumed by each flow (0 when the oracle is exact).
    naive_total_shots: int = 0
    two_level_total_shots: int = 0
    #: ``ExecutionContext.to_dict()`` of the shared oracle configuration
    #: both flows ran against (``None`` for records built by hand).
    execution: Optional[Dict] = None

    @property
    def fc_reduction_percent(self) -> float:
        """Reduction of function calls achieved by the two-level flow."""
        if self.naive_mean_fc == 0:
            return 0.0
        return 100.0 * (1.0 - self.two_level_fc / self.naive_mean_fc)

    @property
    def ar_improvement(self) -> float:
        """AR difference (two-level minus naive mean)."""
        return self.two_level_ar - self.naive_mean_ar


@dataclass(frozen=True)
class ComparisonSummary:
    """Aggregate of many :class:`ComparisonRecord` (one Table-I row)."""

    optimizer_name: str
    target_depth: int
    num_problems: int
    naive_mean_ar: float
    naive_std_ar: float
    naive_mean_fc: float
    naive_std_fc: float
    two_level_mean_ar: float
    two_level_std_ar: float
    two_level_mean_fc: float
    two_level_std_fc: float
    mean_fc_reduction_percent: float
    naive_mean_shots: float = 0.0
    two_level_mean_shots: float = 0.0

    def as_dict(self) -> Dict:
        """Dictionary form for tabular rendering."""
        return {
            "optimizer": self.optimizer_name,
            "p": self.target_depth,
            "naive_mean_ar": self.naive_mean_ar,
            "naive_std_ar": self.naive_std_ar,
            "naive_mean_fc": self.naive_mean_fc,
            "naive_std_fc": self.naive_std_fc,
            "two_level_mean_ar": self.two_level_mean_ar,
            "two_level_std_ar": self.two_level_std_ar,
            "two_level_mean_fc": self.two_level_mean_fc,
            "two_level_std_fc": self.two_level_std_fc,
            "fc_reduction_percent": self.mean_fc_reduction_percent,
            "naive_mean_shots": self.naive_mean_shots,
            "two_level_mean_shots": self.two_level_mean_shots,
        }


def compare_on_problem(
    problem: MaxCutProblem,
    target_depth: int,
    predictor: ParameterPredictor,
    context: ContextLike = None,
    *,
    optimizer: Optional[str] = None,
    num_restarts: int = DEFAULT_NUM_RESTARTS,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = 10000,
    candidate_pool: Optional[int] = None,
    backend=UNSET,
    shots=UNSET,
    noise_model=UNSET,
    trajectories=UNSET,
    seed: RandomState = None,
) -> ComparisonRecord:
    """Measure the naive and two-level flows on one problem instance.

    *context* (an :class:`~repro.execution.context.ExecutionContext` or a
    backend-name shorthand) runs **both** flows against the same oracle
    configuration, and the record reports each flow's consumed shot budget
    alongside its function calls — plus the serialized context itself
    (:attr:`ComparisonRecord.execution`), so the artifact carries the exact
    execution settings that produced it.  *candidate_pool* (optional)
    enables the solver's batched restart screening for both flows; it is
    accounted for in the function-call totals, so the comparison stays
    apples-to-apples.  The legacy ``backend=``/``shots=``/... kwargs
    survive behind the deprecation shim.
    """
    context = resolve_execution_context(
        context,
        {
            "backend": backend,
            "shots": shots,
            "noise_model": noise_model,
            "trajectories": trajectories,
        },
        owner="compare_on_problem",
        stacklevel=3,
    )
    rng = ensure_rng(seed)
    naive_runner = NaiveQAOARunner(
        optimizer,
        context,
        num_restarts=num_restarts,
        tolerance=tolerance,
        max_iterations=max_iterations,
        candidate_pool=candidate_pool,
        seed=rng,
    )
    two_level_runner = TwoLevelQAOARunner(
        predictor,
        optimizer,
        context,
        tolerance=tolerance,
        max_iterations=max_iterations,
        candidate_pool=candidate_pool,
        seed=rng,
    )
    naive = naive_runner.run(problem, target_depth)
    accelerated = two_level_runner.run(problem, target_depth)
    return ComparisonRecord(
        problem_name=problem.name,
        optimizer_name=naive.optimizer_name,
        target_depth=target_depth,
        naive_mean_ar=naive.mean_approximation_ratio,
        naive_std_ar=naive.std_approximation_ratio,
        naive_mean_fc=naive.mean_function_calls,
        naive_std_fc=naive.std_function_calls,
        two_level_ar=accelerated.approximation_ratio,
        two_level_fc=accelerated.total_function_calls,
        level1_fc=accelerated.level1_function_calls,
        level2_fc=accelerated.level2_function_calls,
        naive_total_shots=naive.total_shots,
        two_level_total_shots=accelerated.total_shots,
        execution=context.to_dict(),
    )


def aggregate_records(records: Iterable[ComparisonRecord]) -> ComparisonSummary:
    """Aggregate per-problem records for one (optimizer, depth) combination.

    All records must share the same optimizer and target depth; the summary
    reports graph-level means and standard deviations in the same shape as
    one row of the paper's Table I.
    """
    records = list(records)
    if not records:
        raise ConfigurationError("cannot aggregate an empty record list")
    optimizers = {record.optimizer_name for record in records}
    depths = {record.target_depth for record in records}
    if len(optimizers) != 1 or len(depths) != 1:
        raise ConfigurationError(
            "aggregate_records expects records from a single optimizer and depth, "
            f"got optimizers={sorted(optimizers)}, depths={sorted(depths)}"
        )
    naive_ar = np.array([record.naive_mean_ar for record in records])
    naive_fc = np.array([record.naive_mean_fc for record in records])
    two_ar = np.array([record.two_level_ar for record in records])
    two_fc = np.array([record.two_level_fc for record in records], dtype=float)
    reductions = np.array([record.fc_reduction_percent for record in records])
    naive_shots = np.array([record.naive_total_shots for record in records], dtype=float)
    two_shots = np.array([record.two_level_total_shots for record in records], dtype=float)
    return ComparisonSummary(
        optimizer_name=records[0].optimizer_name,
        target_depth=records[0].target_depth,
        num_problems=len(records),
        naive_mean_ar=float(naive_ar.mean()),
        naive_std_ar=float(naive_ar.std()),
        naive_mean_fc=float(naive_fc.mean()),
        naive_std_fc=float(naive_fc.std()),
        two_level_mean_ar=float(two_ar.mean()),
        two_level_std_ar=float(two_ar.std()),
        two_level_mean_fc=float(two_fc.mean()),
        two_level_std_fc=float(two_fc.std()),
        mean_fc_reduction_percent=float(reductions.mean()),
        naive_mean_shots=float(naive_shots.mean()),
        two_level_mean_shots=float(two_shots.mean()),
    )
