"""Tests for repro.quantum.circuit."""

import pytest

from repro.exceptions import CircuitError
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.parameter import Parameter
from repro.quantum.simulator import StatevectorSimulator


class TestInstruction:
    def test_valid_instruction(self):
        instruction = Instruction("rx", (0,), (0.5,))
        assert instruction.name == "rx"
        assert instruction.matrix().shape == (2, 2)

    def test_unknown_gate_raises(self):
        with pytest.raises(CircuitError):
            Instruction("foo", (0,))

    def test_wrong_qubit_count_raises(self):
        with pytest.raises(CircuitError):
            Instruction("cx", (0,))

    def test_wrong_param_count_raises(self):
        with pytest.raises(CircuitError):
            Instruction("rx", (0,))

    def test_duplicate_qubits_raise(self):
        with pytest.raises(CircuitError):
            Instruction("cx", (1, 1))

    def test_free_parameters(self):
        theta = Parameter("theta")
        instruction = Instruction("rx", (0,), (theta,))
        assert instruction.free_parameters == [theta]


class TestCircuitConstruction:
    def test_builder_methods_chain(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).rx(0.3, 1)
        assert circuit.size() == 3
        assert circuit.count_ops() == {"h": 1, "cx": 1, "rx": 1}

    def test_out_of_range_qubit_raises(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).h(2)

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(2).h(0).h(1)
        assert circuit.depth() == 1

    def test_depth_sequential_gates(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        assert circuit.depth() == 3

    def test_two_qubit_gate_count(self):
        circuit = QuantumCircuit(3).cx(0, 1).cz(1, 2).h(0)
        assert circuit.two_qubit_gate_count() == 2

    def test_cnot_alias(self):
        circuit = QuantumCircuit(2).cnot(0, 1)
        assert circuit.count_ops() == {"cx": 1}


class TestParameterBinding:
    def test_parameters_in_order(self):
        gamma, beta = Parameter("gamma"), Parameter("beta")
        circuit = QuantumCircuit(1).rz(gamma, 0).rx(beta, 0).rz(gamma, 0)
        assert circuit.parameters == [gamma, beta]
        assert circuit.num_parameters == 2

    def test_bind_with_sequence(self):
        gamma = Parameter("gamma")
        circuit = QuantumCircuit(1).rz(gamma, 0)
        bound = circuit.bind([0.7])
        assert bound.num_parameters == 0
        assert bound.instructions[0].params == (0.7,)

    def test_bind_with_mapping_and_expression(self):
        gamma = Parameter("gamma")
        circuit = QuantumCircuit(1).rz(2.0 * gamma, 0)
        bound = circuit.bind({gamma: 0.5})
        assert bound.instructions[0].params == (1.0,)

    def test_bind_wrong_length_raises(self):
        gamma = Parameter("gamma")
        circuit = QuantumCircuit(1).rz(gamma, 0)
        with pytest.raises(CircuitError):
            circuit.bind([0.1, 0.2])

    def test_bind_missing_parameter_raises(self):
        gamma, beta = Parameter("gamma"), Parameter("beta")
        circuit = QuantumCircuit(1).rz(gamma, 0).rx(beta, 0)
        with pytest.raises(CircuitError):
            circuit.bind({gamma: 0.1})


class TestComposeAndInverse:
    def test_compose_concatenates(self):
        first = QuantumCircuit(2).h(0)
        second = QuantumCircuit(2).cx(0, 1)
        combined = first.compose(second)
        assert combined.size() == 2
        assert first.size() == 1

    def test_compose_size_mismatch_raises(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1).compose(QuantumCircuit(2))

    def test_inverse_restores_initial_state(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).rz(0.3, 1).rx(0.7, 0).s(1)
        roundtrip = circuit.compose(circuit.inverse())
        simulator = StatevectorSimulator()
        final = simulator.run(roundtrip)
        assert final.probability("00") == pytest.approx(1.0, abs=1e-10)

    def test_inverse_with_free_parameters_raises(self):
        gamma = Parameter("gamma")
        circuit = QuantumCircuit(1).rz(gamma, 0)
        with pytest.raises(CircuitError):
            circuit.inverse()

    def test_invalid_num_qubits(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)
