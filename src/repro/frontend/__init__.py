"""Circuit ingestion frontend: OpenQASM parsing, lowering, and emission.

The frontend turns external circuit descriptions into programs the compiled
engine can run:

* :func:`~repro.frontend.parser.parse_qasm` — OpenQASM 2-style source to a
  :class:`~repro.frontend.ir.CircuitIR`;
* :class:`~repro.frontend.passes.PassManager` /
  :func:`~repro.frontend.passes.lower_to_native` — decomposition passes that
  rewrite composite gates (``ccx``, ``cu1``, user macros, ...) into a target
  basis, validating the result is native;
* :func:`~repro.frontend.emit.to_circuit` /
  :func:`~repro.frontend.emit.to_qasm` — emission to
  :class:`~repro.quantum.circuit.QuantumCircuit` (unbound QASM parameters
  become :class:`~repro.quantum.parameter.Parameter` objects) and the
  round-tripping exporter;
* :func:`ingest` — the one-call convenience chaining all three;
* :class:`~repro.frontend.evaluator.CircuitExpectationEvaluator` — VQE-style
  ``<psi(theta)| H |psi(theta)>`` evaluation of imported circuits against
  arbitrary :class:`~repro.quantum.operators.PauliSum` observables;
* :mod:`repro.frontend.library` — bundled benchmark circuits (GHZ, QFT-8,
  a hardware-efficient ansatz).
"""

from repro.exceptions import QasmSyntaxError
from repro.frontend.emit import to_circuit, to_qasm
from repro.frontend.ir import AffineParam, CircuitIR, IRGate
from repro.frontend.parser import parse_qasm
from repro.frontend.passes import (
    STANDARD_RULES,
    DecompositionRule,
    PassManager,
    lower_to_native,
)

__all__ = [
    "AffineParam",
    "CircuitIR",
    "CircuitExpectationEvaluator",
    "DecompositionRule",
    "IRGate",
    "PassManager",
    "QasmSyntaxError",
    "STANDARD_RULES",
    "ingest",
    "lower_to_native",
    "parse_qasm",
    "to_circuit",
    "to_qasm",
]


def ingest(source, *, lower_to=None, name=None):
    """Parse, lower, and emit *source* into a native :class:`QuantumCircuit`.

    *source* may be OpenQASM text, a :class:`CircuitIR`, or an already-native
    :class:`~repro.quantum.circuit.QuantumCircuit` (returned unchanged).
    """
    from repro.quantum.circuit import QuantumCircuit

    if isinstance(source, QuantumCircuit):
        return source
    ir = parse_qasm(source) if isinstance(source, str) else source
    if not isinstance(ir, CircuitIR):
        raise TypeError(
            "source must be QASM text, a CircuitIR, or a QuantumCircuit, "
            f"got {type(source).__name__}"
        )
    return to_circuit(lower_to_native(ir, lower_to=lower_to), name=name)


def __getattr__(attr):
    # CircuitExpectationEvaluator pulls in the simulator stack; keep the
    # parser importable without it.
    if attr == "CircuitExpectationEvaluator":
        from repro.frontend.evaluator import CircuitExpectationEvaluator

        return CircuitExpectationEvaluator
    raise AttributeError(f"module {__name__!r} has no attribute {attr!r}")
