"""Tests for repro.utils.statistics."""

import numpy as np
import pytest

from repro.utils.statistics import (
    mean_absolute_percentage_error,
    pearson_correlation,
    percentage_error,
    summarize,
)


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.count == 4
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4]))

    def test_single_value(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_non_finite_raises(self):
        with pytest.raises(ValueError):
            summarize([1.0, float("nan")])


class TestPearsonCorrelation:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_zero_variance_gives_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_symmetry(self):
        x = [1.0, 4.0, 2.0, 8.0]
        y = [0.3, 1.1, 0.2, 2.0]
        assert pearson_correlation(x, y) == pytest.approx(pearson_correlation(y, x))

    def test_bounded(self, rng):
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        assert -1.0 <= pearson_correlation(x, y) <= 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1], [2])


class TestPercentageError:
    def test_relative_error(self):
        assert percentage_error(1.1, 1.0) == pytest.approx(10.0)

    def test_with_scale(self):
        assert percentage_error(1.5, 1.0, scale=2.0) == pytest.approx(25.0)

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            percentage_error(1.0, 0.0)

    def test_mean_absolute_percentage_error(self):
        value = mean_absolute_percentage_error([1.1, 0.9], [1.0, 1.0])
        assert value == pytest.approx(10.0)

    def test_mape_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])
