"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_optional_seed, ensure_rng, random_seed, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        first = ensure_rng(123).random(5)
        second = ensure_rng(123).random(5)
        np.testing.assert_allclose(first, second)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_objects(self):
        children = spawn_rngs(0, 3)
        assert len({id(child) for child in children}) == 3

    def test_deterministic_given_seed(self):
        first = [g.random() for g in spawn_rngs(42, 4)]
        second = [g.random() for g in spawn_rngs(42, 4)]
        np.testing.assert_allclose(first, second)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestHelpers:
    def test_random_seed_range(self):
        seed = random_seed(3)
        assert 0 <= seed < 2**31

    def test_as_optional_seed_int(self):
        assert as_optional_seed(5) == 5

    def test_as_optional_seed_none_for_generator(self):
        assert as_optional_seed(np.random.default_rng(0)) is None
        assert as_optional_seed(None) is None
