"""A from-scratch statevector quantum-circuit simulator.

This subpackage replaces the QuTiP simulator used in the paper.  It provides:

* :mod:`repro.quantum.gates` — the gate matrices (fixed and parametric),
* :mod:`repro.quantum.parameter` — symbolic circuit parameters,
* :mod:`repro.quantum.circuit` — the :class:`QuantumCircuit` container,
* :mod:`repro.quantum.statevector` — the :class:`Statevector` state object,
* :mod:`repro.quantum.operators` — Pauli-string observables,
* :mod:`repro.quantum.engine` — the compiled gate-kernel execution engine,
* :mod:`repro.quantum.noise` — noise channels, readout errors, finite shots,
* :mod:`repro.quantum.simulator` — the :class:`StatevectorSimulator` engine,
* :mod:`repro.quantum.density` — the exact density-matrix channel oracle.
"""

from repro.quantum.parameter import Parameter, ParameterExpression, ParameterVector
from repro.quantum.gates import GATE_REGISTRY, GateDefinition, gate_matrix
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.statevector import Statevector
from repro.quantum.operators import PauliString, PauliSum
from repro.quantum.noise import (
    AmplitudeDampingApprox,
    AmplitudeDampingChannel,
    BitFlip,
    CorrelatedPauliChannel,
    DepolarizingChannel,
    NoiseModel,
    PauliChannel,
    PhaseFlip,
    QuantumChannel,
    ReadoutErrorModel,
    ShotEstimator,
    TwoQubitDepolarizingChannel,
    channel_from_dict,
)
from repro.quantum.engine import (
    CompiledProgram,
    NoisyCompiledProgram,
    compile_circuit,
    compile_noisy_circuit,
)
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.density import DensityMatrix, DensityMatrixSimulator

__all__ = [
    "Parameter",
    "ParameterExpression",
    "ParameterVector",
    "GATE_REGISTRY",
    "GateDefinition",
    "gate_matrix",
    "Instruction",
    "QuantumCircuit",
    "Statevector",
    "PauliString",
    "PauliSum",
    "QuantumChannel",
    "PauliChannel",
    "DepolarizingChannel",
    "BitFlip",
    "PhaseFlip",
    "AmplitudeDampingApprox",
    "AmplitudeDampingChannel",
    "TwoQubitDepolarizingChannel",
    "CorrelatedPauliChannel",
    "ReadoutErrorModel",
    "NoiseModel",
    "ShotEstimator",
    "channel_from_dict",
    "CompiledProgram",
    "NoisyCompiledProgram",
    "compile_circuit",
    "compile_noisy_circuit",
    "StatevectorSimulator",
    "DensityMatrix",
    "DensityMatrixSimulator",
]
