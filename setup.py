"""Setuptools shim.

Package metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works with older setuptools/pip tool-chains (and in
offline environments without the ``wheel`` package).
"""

from setuptools import setup

setup()
