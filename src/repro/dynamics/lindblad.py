"""Lindblad master-equation generators on ``vec(rho)``.

A :class:`Lindbladian` is the generator of the GKSL master equation

.. math::

    \\dot\\rho = -i[H, \\rho]
        + \\sum_j \\gamma_j \\Bigl(L_j \\rho L_j^\\dagger
        - \\tfrac12 \\{L_j^\\dagger L_j, \\rho\\}\\Bigr).

Two evaluation tiers mirror the PTM engine split of
:mod:`repro.quantum.engine`:

* **structured** — :meth:`Lindbladian.rhs` applies the generator to a
  flattened density matrix through moveaxis/GEMM contractions of the small
  jump operators and the matrix-free :class:`~repro.dynamics.generators.Hamiltonian`
  tables, never materialising the ``4^n x 4^n`` superoperator.  This is the
  path the integrators drive, and the only one that scales (the dense
  superoperator at ``n = 8`` would occupy ``65536^2`` complex entries,
  roughly 68 GB).
* **dense** — :meth:`superoperator` assembles the explicit matrix on
  row-major ``vec(rho)`` using the same doubled-register convention as the
  compiled engine (``vec(A rho B) = (A kron B^T) vec(rho)``), and
  :meth:`expm_evolve` exponentiates it.  Both are capped at
  :data:`DENSE_SUPEROP_MAX_QUBITS` and kept as the closed-form oracle the
  structured path is tested and benchmarked against.

Jump operators come either from explicit ``(operator, qubit, rate)``
triples or from a :class:`~repro.quantum.noise.NoiseModel` through the
channels' :meth:`~repro.quantum.noise.QuantumChannel.lindblad_rates`
convention, so discrete per-gate channel strengths and continuous rates
round-trip.

Examples
--------
>>> import numpy as np
>>> from repro.dynamics import Lindbladian
>>> lind = Lindbladian.depolarizing(1, rate=0.3)
>>> len(lind.jumps)
3
>>> rho = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
>>> drho = lind.rhs(0.0, rho.reshape(-1)).reshape(2, 2)
>>> bool(abs(np.trace(drho)) < 1e-12)          # trace preserving
True
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError

#: Dense superoperator ceiling: ``4^n x 4^n`` entries (n=6 is ~270 MB).
DENSE_SUPEROP_MAX_QUBITS = 6

#: Named single-qubit jump operators accepted wherever a matrix is.
JUMP_OPERATORS: Dict[str, np.ndarray] = {
    "X": np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
    "Y": np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex),
    "Z": np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex),
    "sigma_minus": np.array([[0.0, 1.0], [0.0, 0.0]], dtype=complex),
    "sigma_plus": np.array([[0.0, 0.0], [1.0, 0.0]], dtype=complex),
}


def _apply_left(
    array: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Left-multiply a ``2^k`` operator onto the row index of ``(dim, dim)``.

    Same moveaxis/GEMM contraction as the density-matrix simulator: the
    column index rides along as a flattened batch axis.
    """
    k = len(qubits)
    axes = [num_qubits - 1 - q for q in qubits]
    tensor = array.reshape((2,) * num_qubits + (-1,))
    tensor = np.moveaxis(tensor, axes, range(k))
    shape = tensor.shape
    flat = matrix @ tensor.reshape(2**k, -1)
    tensor = np.moveaxis(flat.reshape(shape), range(k), axes)
    return np.ascontiguousarray(tensor).reshape(array.shape)


class JumpOperator:
    """One dissipation term: a small operator, its qubits, and a rate."""

    __slots__ = ("matrix", "qubits", "rate", "label", "_normal")

    def __init__(
        self,
        operator: Union[str, np.ndarray],
        qubits: Union[int, Sequence[int]],
        rate: float,
    ):
        if isinstance(operator, str):
            if operator not in JUMP_OPERATORS:
                raise ConfigurationError(
                    f"unknown jump operator {operator!r}; named jumps: "
                    f"{', '.join(sorted(JUMP_OPERATORS))}"
                )
            self.label: Optional[str] = operator
            matrix = JUMP_OPERATORS[operator]
        else:
            self.label = None
            matrix = np.asarray(operator, dtype=complex)
        if (
            matrix.ndim != 2
            or matrix.shape[0] != matrix.shape[1]
            or matrix.shape[0] < 2
            or matrix.shape[0] & (matrix.shape[0] - 1)
        ):
            raise ConfigurationError(
                f"jump operators must be square with power-of-two dimension "
                f">= 2, got shape {matrix.shape}"
            )
        if not np.all(np.isfinite(matrix)):
            raise ConfigurationError("jump operators must be finite")
        if isinstance(qubits, (int, np.integer)):
            qubits = (int(qubits),)
        else:
            qubits = tuple(int(q) for q in qubits)
        if len(set(qubits)) != len(qubits):
            raise ConfigurationError(f"jump qubits must be distinct, got {qubits}")
        if matrix.shape[0] != 1 << len(qubits):
            raise ConfigurationError(
                f"jump operator of shape {matrix.shape} needs "
                f"{int(matrix.shape[0]).bit_length() - 1} qubit(s), got {qubits}"
            )
        rate = float(rate)
        if not np.isfinite(rate) or rate < 0.0:
            raise ConfigurationError(f"jump rate must be finite and >= 0, got {rate}")
        matrix = matrix.copy()
        matrix.setflags(write=False)
        self.matrix = matrix
        self.qubits = qubits
        self.rate = rate
        normal = matrix.conj().T @ matrix
        normal.setflags(write=False)
        self._normal = normal  # L^dagger L, reused every rhs evaluation

    def __repr__(self) -> str:
        label = self.label or f"matrix{self.matrix.shape}"
        return f"JumpOperator({label}, qubits={self.qubits}, rate={self.rate:.4g})"


class Lindbladian:
    """The GKSL generator: a (possibly time-dependent) Hamiltonian + jumps.

    Parameters
    ----------
    hamiltonian:
        ``None`` (pure dissipation), a
        :class:`~repro.dynamics.generators.Hamiltonian`, or any object with
        ``apply(array, t)`` and ``time_dependent = True`` (e.g. the
        schedule-interpolated Hamiltonian of :mod:`repro.dynamics.schedules`).
    jumps:
        ``(operator, qubits, rate)`` triples; *operator* is a named
        single-qubit jump (``"X"``, ``"Y"``, ``"Z"``, ``"sigma_minus"``,
        ``"sigma_plus"``) or an explicit ``2^k x 2^k`` array.
    num_qubits:
        Register size; inferred from *hamiltonian* when omitted.
    """

    def __init__(
        self,
        hamiltonian: Optional[object] = None,
        jumps: Sequence[Tuple[object, object, float]] = (),
        *,
        num_qubits: Optional[int] = None,
    ):
        if num_qubits is None:
            if hamiltonian is None:
                raise ConfigurationError(
                    "num_qubits is required when no Hamiltonian is given"
                )
            num_qubits = int(hamiltonian.num_qubits)
        else:
            num_qubits = int(num_qubits)
            if hamiltonian is not None and int(hamiltonian.num_qubits) != num_qubits:
                raise ConfigurationError(
                    f"hamiltonian acts on {hamiltonian.num_qubits} qubits, "
                    f"num_qubits says {num_qubits}"
                )
        if num_qubits < 1:
            raise ConfigurationError(f"num_qubits must be >= 1, got {num_qubits}")
        self._num_qubits = num_qubits
        self._dim = 1 << num_qubits
        self._hamiltonian = hamiltonian
        self._time_dependent = bool(
            hamiltonian is not None and getattr(hamiltonian, "time_dependent", False)
        )
        prepared = []
        for operator, qubits, rate in jumps:
            jump = JumpOperator(operator, qubits, rate)
            if any(q < 0 or q >= num_qubits for q in jump.qubits):
                raise ConfigurationError(
                    f"jump qubits {jump.qubits} outside the {num_qubits}-qubit register"
                )
            if jump.rate > 0.0:
                prepared.append(jump)
        self._jumps = tuple(prepared)
        self._superoperator_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def depolarizing(
        cls,
        num_qubits: int,
        rate: float,
        *,
        hamiltonian: Optional[object] = None,
    ) -> "Lindbladian":
        """Uniform depolarizing dissipation: X/Y/Z jumps at ``rate / 3``
        on every qubit.

        The integrated time-``t`` map on each qubit is the discrete
        :class:`~repro.quantum.noise.DepolarizingChannel` with
        ``p(t) = 3/4 * (1 - exp(-4 * rate/3 * t))`` — the
        :meth:`~repro.quantum.noise.QuantumChannel.lindblad_rates`
        convention.
        """
        rate = float(rate)
        if not np.isfinite(rate) or rate < 0.0:
            raise ConfigurationError(f"rate must be finite and >= 0, got {rate}")
        jumps = []
        for qubit in range(int(num_qubits)):
            for label in ("X", "Y", "Z"):
                jumps.append((label, qubit, rate / 3.0))
        return cls(hamiltonian, jumps, num_qubits=int(num_qubits))

    @classmethod
    def from_noise_model(
        cls,
        model,
        num_qubits: int,
        *,
        duration: float = 1.0,
        hamiltonian: Optional[object] = None,
    ) -> "Lindbladian":
        """Convert a discrete :class:`~repro.quantum.noise.NoiseModel` into
        continuous jump operators.

        Every attached channel is translated through its
        :meth:`~repro.quantum.noise.QuantumChannel.lindblad_rates`
        (*duration* is the gate time the per-application strengths are
        spread over); a rule's ``qubits=`` filter selects the registers the
        jumps act on (``None`` = all).  Rules with ``gates=`` or ``arity=``
        filters have no continuous-time meaning and are rejected.
        """
        from repro.quantum.noise import NoiseModel

        if not isinstance(model, NoiseModel):
            raise ConfigurationError(
                f"model must be a NoiseModel, got {type(model).__name__}"
            )
        num_qubits = int(num_qubits)
        jumps = []
        for rule in model.to_dict()["rules"]:
            if rule["gates"] is not None or rule["arity"] is not None:
                raise ConfigurationError(
                    "continuous-time conversion supports only per-qubit rules; "
                    "gates=/arity= filters are gate-clock concepts with no "
                    "master-equation meaning"
                )
            from repro.quantum.noise import channel_from_dict

            channel = channel_from_dict(rule["channel"])
            if channel.num_qubits != 1:
                raise ConfigurationError(
                    f"channel {channel.name!r} acts jointly on "
                    f"{channel.num_qubits} qubits; only single-qubit channels "
                    f"have a per-qubit jump-operator form here"
                )
            rates = channel.lindblad_rates(duration)
            targets = (
                range(num_qubits) if rule["qubits"] is None else rule["qubits"]
            )
            for qubit in targets:
                if not 0 <= int(qubit) < num_qubits:
                    raise ConfigurationError(
                        f"noise rule targets qubit {qubit} outside the "
                        f"{num_qubits}-qubit register"
                    )
                for label, rate in sorted(rates.items()):
                    jumps.append((label, int(qubit), rate))
        return cls(hamiltonian, jumps, num_qubits=num_qubits)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2^n`` (``vec(rho)`` has length ``4^n``)."""
        return self._dim

    @property
    def hamiltonian(self):
        return self._hamiltonian

    @property
    def jumps(self) -> Tuple[JumpOperator, ...]:
        return self._jumps

    @property
    def time_dependent(self) -> bool:
        return self._time_dependent

    # ------------------------------------------------------------------
    # Structured application (the integrator path)
    # ------------------------------------------------------------------
    def _hamiltonian_columns(self, block: np.ndarray, t: float) -> np.ndarray:
        if self._time_dependent:
            return self._hamiltonian.apply(block, t)
        return self._hamiltonian.apply(block)

    def apply_density(self, rho: np.ndarray, t: float = 0.0) -> np.ndarray:
        """``d(rho)/dt`` for a ``(dim, dim)`` density matrix at time *t*."""
        rho = np.asarray(rho, dtype=complex)
        if rho.shape != (self._dim, self._dim):
            raise SimulationError(
                f"expected a ({self._dim}, {self._dim}) density matrix, "
                f"got shape {rho.shape}"
            )
        out = np.zeros_like(rho)
        if self._hamiltonian is not None:
            # -i (H rho - rho H); rho H = (H rho^dagger)^dagger exactly,
            # without assuming the integrator's stage inputs are Hermitian.
            h_rho = self._hamiltonian_columns(rho, t)
            rho_h = self._hamiltonian_columns(rho.conj().T, t).conj().T
            out += -1j * (h_rho - rho_h)
        n = self._num_qubits
        for jump in self._jumps:
            sandwich = _apply_left(rho, jump.matrix, jump.qubits, n)
            sandwich = _apply_left(
                sandwich.conj().T, jump.matrix, jump.qubits, n
            ).conj().T
            anti_left = _apply_left(rho, jump._normal, jump.qubits, n)
            anti_right = _apply_left(
                rho.conj().T, jump._normal, jump.qubits, n
            ).conj().T
            out += jump.rate * (sandwich - 0.5 * (anti_left + anti_right))
        return out

    def rhs(self, t: float, vec_rho: np.ndarray) -> np.ndarray:
        """The generator on row-major ``vec(rho)`` (integrator signature)."""
        rho = np.asarray(vec_rho).reshape(self._dim, self._dim)
        return self.apply_density(rho, t).reshape(-1)

    # ------------------------------------------------------------------
    # Dense oracle (tests + benchmark baseline)
    # ------------------------------------------------------------------
    def _embed(self, matrix: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        """Embed a ``2^k`` operator into the full ``2^n`` Hilbert space."""
        return _apply_left(
            np.eye(self._dim, dtype=complex), matrix, qubits, self._num_qubits
        )

    def superoperator(self, t: float = 0.0) -> np.ndarray:
        """The dense ``4^n x 4^n`` generator on row-major ``vec(rho)``.

        Uses the doubled-register convention of the compiled engine:
        ``vec(A rho B) = (A kron B^T) vec(rho)``, so the unitary part is
        ``-i (H kron I - I kron H^T)`` and each dissipator contributes
        ``rate * (L kron conj(L) - 1/2 (L^dag L kron I) - 1/2 (I kron (L^dag L)^T))``.

        Exponential in memory — capped at :data:`DENSE_SUPEROP_MAX_QUBITS`
        qubits; the structured :meth:`rhs` path has no such ceiling.  For a
        time-dependent Hamiltonian the snapshot at *t* is returned (and
        never cached).
        """
        if self._num_qubits > DENSE_SUPEROP_MAX_QUBITS:
            raise ConfigurationError(
                f"the dense superoperator is limited to "
                f"{DENSE_SUPEROP_MAX_QUBITS} qubits (4^n x 4^n memory), the "
                f"generator acts on {self._num_qubits}; use rhs()"
            )
        if not self._time_dependent and self._superoperator_cache is not None:
            return self._superoperator_cache
        dim = self._dim
        identity = np.eye(dim, dtype=complex)
        matrix = np.zeros((dim * dim, dim * dim), dtype=complex)
        if self._hamiltonian is not None:
            if self._time_dependent:
                h_full = self._hamiltonian.hamiltonian(t).matrix()
            else:
                h_full = self._hamiltonian.matrix()
            matrix += -1j * (np.kron(h_full, identity) - np.kron(identity, h_full.T))
        for jump in self._jumps:
            l_full = self._embed(jump.matrix, jump.qubits)
            normal_full = self._embed(jump._normal, jump.qubits)
            matrix += jump.rate * (
                np.kron(l_full, l_full.conj())
                - 0.5 * np.kron(normal_full, identity)
                - 0.5 * np.kron(identity, normal_full.T)
            )
        if not self._time_dependent:
            matrix.setflags(write=False)
            self._superoperator_cache = matrix
        return matrix

    def expm_evolve(self, rho0: np.ndarray, time: float) -> np.ndarray:
        """Closed-form evolution ``expm(t L) vec(rho0)`` (dense baseline).

        Only valid for a time-independent generator; this is the "naive
        dense ``expm``" oracle the structured integrator path is pinned
        against in tests and ``BENCH_dynamics.json``.
        """
        if self._time_dependent:
            raise ConfigurationError(
                "expm_evolve needs a time-independent generator; integrate "
                "time-dependent Hamiltonians with repro.dynamics.evolve"
            )
        from scipy.linalg import expm

        rho0 = np.asarray(rho0, dtype=complex)
        if rho0.shape != (self._dim, self._dim):
            raise SimulationError(
                f"expected a ({self._dim}, {self._dim}) density matrix, "
                f"got shape {rho0.shape}"
            )
        propagator = expm(float(time) * self.superoperator())
        return (propagator @ rho0.reshape(-1)).reshape(self._dim, self._dim)

    def __repr__(self) -> str:
        return (
            f"Lindbladian(num_qubits={self._num_qubits}, "
            f"jumps={len(self._jumps)}, "
            f"hamiltonian={'None' if self._hamiltonian is None else 'set'}, "
            f"time_dependent={self._time_dependent})"
        )


__all__ = [
    "DENSE_SUPEROP_MAX_QUBITS",
    "JUMP_OPERATORS",
    "JumpOperator",
    "Lindbladian",
]
