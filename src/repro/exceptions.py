"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed quantum circuits or invalid gate applications."""


class SimulationError(ReproError):
    """Raised when a statevector simulation cannot be carried out."""


class QasmSyntaxError(CircuitError):
    """Raised for malformed OpenQASM source, with the offending location.

    Carries ``line`` and ``column`` (both 1-based, 0 when unknown) so tools
    can point at the failing token; ``str(exc)`` already includes them.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = int(line)
        self.column = int(column)


class GraphError(ReproError):
    """Raised for invalid graph constructions or MaxCut problem definitions."""


class OptimizationError(ReproError):
    """Raised when a classical optimization run fails or is misconfigured."""


class ModelError(ReproError):
    """Raised for machine-learning model misuse (e.g. predict before fit)."""


class DatasetError(ReproError):
    """Raised for malformed or inconsistent training data-sets."""


class ConfigurationError(ReproError):
    """Raised for invalid experiment or solver configurations."""


class ServiceError(ReproError):
    """Raised for solver-service failures (bad submissions, shutdown misuse)."""


class TransientServiceError(ServiceError):
    """A service failure worth retrying (the job retry policy catches these)."""


class JobCancelledError(ServiceError):
    """Raised when the result of a cancelled job is requested."""


class JobTimeoutError(ServiceError):
    """Raised when a job exceeds its per-job timeout, or a result wait expires."""


class CircuitOpenError(ServiceError):
    """Raised when a circuit breaker rejects work because its backend is
    considered unhealthy (open state); retry after the recovery window."""


class CheckpointError(ReproError):
    """Raised for invalid checkpoint usage (mismatched key/depth, bad store)."""
