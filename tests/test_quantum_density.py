"""Tests for the exact density-matrix channel oracle (repro.quantum.density).

Covers the :class:`DensityMatrix` state object, the
:class:`DensityMatrixSimulator` (compiled double-sweep and per-instruction
paths), exactness against the statevector simulator and against closed-form
channel results, the true :class:`AmplitudeDampingChannel`, readout
assignment errors + confusion-matrix-inversion mitigation, and the
``density=True`` mode of :class:`~repro.qaoa.cost.ExpectationEvaluator`.
"""

import numpy as np
import pytest

from repro.execution import ExecutionContext
from repro.exceptions import ConfigurationError, SimulationError
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.maxcut import MaxCutProblem
from repro.qaoa.circuit_builder import build_parametric_qaoa_circuit
from repro.qaoa.cost import ExpectationEvaluator
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density import DensityMatrix, DensityMatrixSimulator
from repro.quantum.noise import (
    AmplitudeDampingApprox,
    AmplitudeDampingChannel,
    BitFlip,
    DepolarizingChannel,
    NoiseModel,
    PauliChannel,
    PhaseFlip,
    ReadoutErrorModel,
    ShotEstimator,
    apply_pauli,
)
from repro.quantum.operators import PauliSum
from repro.quantum.simulator import StatevectorSimulator
from repro.quantum.statevector import Statevector


def _problem(seed: int = 3, nodes: int = 6) -> MaxCutProblem:
    return MaxCutProblem(erdos_renyi_graph(nodes, 0.5, seed=seed))


def _bound_circuit(problem: MaxCutProblem, depth: int):
    circuit, gammas, betas = build_parametric_qaoa_circuit(problem, depth)
    values = {g: 0.3 + 0.1 * i for i, g in enumerate(gammas)}
    values.update({b: 0.2 + 0.05 * i for i, b in enumerate(betas)})
    return circuit, values


ALL_CHANNELS = [
    PauliChannel(0.1, 0.2, 0.3),
    DepolarizingChannel(0.05),
    BitFlip(0.1),
    PhaseFlip(0.1),
    AmplitudeDampingApprox(0.3),
    AmplitudeDampingChannel(0.3),
]


# ---------------------------------------------------------------------------
# DensityMatrix
# ---------------------------------------------------------------------------

class TestDensityMatrix:
    def test_constructors(self):
        zero = DensityMatrix.zero_state(2)
        assert zero.num_qubits == 2 and zero.dim == 4
        assert zero.trace() == pytest.approx(1.0)
        assert zero.purity() == pytest.approx(1.0)

        labelled = DensityMatrix.from_label("10")
        assert labelled.probability("10") == pytest.approx(1.0)

        mixed = DensityMatrix.maximally_mixed(3)
        assert mixed.purity() == pytest.approx(1.0 / 8.0)
        assert mixed.trace() == pytest.approx(1.0)

        state = Statevector.uniform_superposition(2)
        rho = DensityMatrix.from_statevector(state)
        assert np.allclose(rho.data, np.full((4, 4), 0.25))

    def test_validation(self):
        with pytest.raises(SimulationError):
            DensityMatrix(np.zeros((3, 3), dtype=complex))  # not a power of two
        with pytest.raises(SimulationError):
            DensityMatrix(np.zeros(4, dtype=complex))  # not square
        with pytest.raises(SimulationError):
            DensityMatrix(np.eye(2, dtype=complex))  # trace 2
        skew = np.array([[0.5, 1j], [2j, 0.5]])
        with pytest.raises(SimulationError):
            DensityMatrix(skew)  # not Hermitian
        with pytest.raises(SimulationError):
            DensityMatrix.zero_state(0)
        with pytest.raises(TypeError):
            hash(DensityMatrix.zero_state(1))

    def test_apply_unitary_matches_statevector(self):
        rng = np.random.default_rng(5)
        amplitudes = rng.normal(size=8) + 1j * rng.normal(size=8)
        amplitudes /= np.linalg.norm(amplitudes)
        state = Statevector(amplitudes.copy(), validate=False)
        rho = DensityMatrix.from_statevector(state)
        h = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2.0)
        cx = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        state.apply_matrix(h, [1]).apply_matrix(cx, [2, 0])
        rho.apply_unitary(h, [1]).apply_unitary(cx, [2, 0])
        assert np.allclose(
            rho.data, np.outer(state.data, state.data.conj()), atol=1e-12
        )

    def test_apply_unitary_validation(self):
        rho = DensityMatrix.zero_state(2)
        with pytest.raises(SimulationError):
            rho.apply_unitary(np.eye(2), [0, 1])  # shape mismatch
        with pytest.raises(SimulationError):
            rho.apply_unitary(np.eye(4), [0, 0])  # duplicate qubits
        with pytest.raises(SimulationError):
            rho.apply_kraus([], (0,))

    @pytest.mark.parametrize("channel", ALL_CHANNELS, ids=lambda c: c.name)
    def test_kraus_application_preserves_trace_and_hermiticity(self, channel):
        rng = np.random.default_rng(11)
        amplitudes = rng.normal(size=4) + 1j * rng.normal(size=4)
        amplitudes /= np.linalg.norm(amplitudes)
        rho = DensityMatrix.from_statevector(Statevector(amplitudes, validate=False))
        rho.apply_channel(channel, 1)
        assert rho.trace() == pytest.approx(1.0, abs=1e-12)
        assert rho.is_hermitian()

    @pytest.mark.parametrize("channel", ALL_CHANNELS, ids=lambda c: c.name)
    def test_full_register_channel_matches_2x2_reference(self, channel):
        """apply_kraus on a 1-qubit register equals the channel's own map."""
        rng = np.random.default_rng(7)
        amplitudes = rng.normal(size=2) + 1j * rng.normal(size=2)
        amplitudes /= np.linalg.norm(amplitudes)
        rho = DensityMatrix.from_statevector(Statevector(amplitudes, validate=False))
        reference = channel.apply_to_density_matrix(rho.data)
        rho.apply_channel(channel, 0)
        assert np.allclose(rho.data, reference, atol=1e-12)

    def test_expectation_diagonal_and_pauli_sum(self):
        problem = _problem(nodes=4)
        state = Statevector.uniform_superposition(4)
        rho = DensityMatrix.from_statevector(state)
        diagonal = problem.cost_diagonal()
        expected = float(state.probabilities() @ diagonal)
        assert rho.expectation_diagonal(diagonal) == pytest.approx(expected)
        hamiltonian = problem.cost_hamiltonian()
        assert rho.expectation(hamiltonian) == pytest.approx(expected)

    def test_expectation_non_diagonal_observable(self):
        observable = PauliSum().add_term(1.0, "X")
        plus = DensityMatrix.from_statevector(
            Statevector(np.array([1.0, 1.0]) / np.sqrt(2.0))
        )
        assert plus.expectation(observable) == pytest.approx(1.0)
        assert DensityMatrix.zero_state(1).expectation(observable) == pytest.approx(0.0)
        with pytest.raises(SimulationError):
            DensityMatrix.zero_state(2).expectation(observable)

    def test_fidelity_with_statevector(self):
        state = Statevector.uniform_superposition(2)
        assert DensityMatrix.from_statevector(state).fidelity_with_statevector(
            state
        ) == pytest.approx(1.0)
        assert DensityMatrix.maximally_mixed(2).fidelity_with_statevector(
            state
        ) == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Channels (true amplitude damping and Kraus completeness)
# ---------------------------------------------------------------------------

class TestChannels:
    @pytest.mark.parametrize("channel", ALL_CHANNELS, ids=lambda c: c.name)
    def test_kraus_completeness(self, channel):
        total = sum(k.conj().T @ k for k in channel.kraus_operators())
        assert np.allclose(total, np.eye(2), atol=1e-12)

    def test_amplitude_damping_action(self):
        gamma = 0.4
        channel = AmplitudeDampingChannel(gamma)
        excited = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex)
        damped = channel.apply_to_density_matrix(excited)
        assert np.allclose(damped, [[gamma, 0.0], [0.0, 1.0 - gamma]], atol=1e-12)
        # |0><0| is the fixed point; the channel is NOT unital.
        ground = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
        assert np.allclose(channel.apply_to_density_matrix(ground), ground)
        mixed = np.eye(2, dtype=complex) / 2.0
        assert not np.allclose(channel.apply_to_density_matrix(mixed), mixed)

    def test_amplitude_damping_full_decay(self):
        channel = AmplitudeDampingChannel(1.0)
        excited = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex)
        assert np.allclose(
            channel.apply_to_density_matrix(excited), [[1.0, 0.0], [0.0, 0.0]]
        )

    def test_amplitude_damping_validation(self):
        with pytest.raises(ConfigurationError):
            AmplitudeDampingChannel(-0.1)
        with pytest.raises(ConfigurationError):
            AmplitudeDampingChannel(1.5)
        assert not AmplitudeDampingChannel(0.2).is_pauli
        assert AmplitudeDampingApprox(0.2).is_pauli

    def test_trajectory_sampling_rejects_non_pauli(self):
        model = NoiseModel().add_channel(AmplitudeDampingChannel(0.1))
        assert not model.is_pauli_only
        with pytest.raises(SimulationError):
            model.sample_errors([("h", (0,))], np.random.default_rng(0))
        with pytest.raises(SimulationError):
            model.expected_error_count([("h", (0,))])

    def test_kraus_operators_are_cached_and_read_only(self):
        channel = DepolarizingChannel(0.1)
        first = channel.kraus_operators()
        second = channel.kraus_operators()
        assert all(a is b for a, b in zip(first, second))
        with pytest.raises(ValueError):
            first[0][0, 0] = 99.0


# ---------------------------------------------------------------------------
# DensityMatrixSimulator
# ---------------------------------------------------------------------------

class TestDensityMatrixSimulator:
    @pytest.mark.parametrize("compiled", [True, False])
    def test_noiseless_matches_statevector_to_1e12(self, compiled):
        problem = _problem()
        circuit, values = _bound_circuit(problem, 2)
        state = StatevectorSimulator().run(circuit, values)
        rho = DensityMatrixSimulator(compiled=compiled).run(circuit, values)
        projector = np.outer(state.data, state.data.conj())
        assert np.abs(rho.data - projector).max() < 1e-12
        assert rho.purity() == pytest.approx(1.0, abs=1e-10)

    def test_compiled_and_generic_paths_agree(self):
        problem = _problem(seed=5)
        circuit, values = _bound_circuit(problem, 3)
        compiled = DensityMatrixSimulator(compiled=True).run(circuit, values)
        generic = DensityMatrixSimulator(compiled=False).run(circuit, values)
        assert np.abs(compiled.data - generic.data).max() < 1e-12

    def test_parametric_binding_and_errors(self):
        problem = _problem(nodes=4)
        circuit, _ = _bound_circuit(problem, 1)
        simulator = DensityMatrixSimulator()
        with pytest.raises(SimulationError):
            simulator.run(circuit)  # unbound parameters
        with pytest.raises(SimulationError):
            DensityMatrixSimulator(compiled=False).run(circuit)
        with pytest.raises(SimulationError):
            DensityMatrixSimulator(max_qubits=2).run(circuit, [0.1] * 2)
        with pytest.raises(SimulationError):
            DensityMatrixSimulator(max_qubits=0)

    def test_initial_state_variants(self):
        bell = QuantumCircuit(2)
        bell.h(0)
        bell.cx(0, 1)
        simulator = DensityMatrixSimulator()
        from_default = simulator.run(bell)
        from_statevector = simulator.run(bell, initial_state=Statevector.zero_state(2))
        from_density = simulator.run(bell, initial_state=DensityMatrix.zero_state(2))
        assert np.allclose(from_default.data, from_statevector.data)
        assert np.allclose(from_default.data, from_density.data)
        with pytest.raises(SimulationError):
            simulator.run(bell, initial_state=Statevector.zero_state(3))
        assert simulator.executed_circuits == 3

    def test_certain_bitflip_matches_deterministic_trajectory(self):
        bell = QuantumCircuit(2)
        bell.h(0)
        bell.cx(0, 1)
        model = NoiseModel().add_channel(BitFlip(1.0), gates=("cx",), qubits=(1,))
        trajectory = StatevectorSimulator().run(bell, noise_model=model, rng=0)
        rho = DensityMatrixSimulator().run(bell, noise_model=model)
        assert np.allclose(
            rho.data,
            np.outer(trajectory.data, trajectory.data.conj()),
            atol=1e-12,
        )

    def test_exact_trajectory_mean_equals_oracle(self):
        """Enumerating the 4 Pauli patterns reproduces the oracle exactly.

        One depolarizing site => the trajectory distribution has exactly four
        outcomes (I, X, Y, Z) with known weights.  The probability-weighted
        trajectory mean must equal the density-matrix result to 1e-12 — an
        *exact* trajectory-vs-oracle statement with no Monte-Carlo bound.
        """
        p = 0.3
        circuit = QuantumCircuit(1)
        circuit.h(0)
        observable = PauliSum().add_term(1.0, "X")
        model = NoiseModel().add_channel(DepolarizingChannel(p), gates=("h",))
        plus = StatevectorSimulator().run(circuit).data
        mean = (1.0 - p) * 1.0  # identity pattern: <+|X|+> = 1
        for pauli in "XYZ":
            errored = apply_pauli(plus.copy(), 0, pauli)
            state = Statevector(errored, copy=False, validate=False)
            mean += (p / 3.0) * observable.expectation(state)
        oracle = DensityMatrixSimulator().run(circuit, noise_model=model)
        assert oracle.expectation(observable) == pytest.approx(mean, abs=1e-12)
        # And the closed form: depolarizing scales <X> by 1 - 4p/3.
        assert oracle.expectation(observable) == pytest.approx(
            1.0 - 4.0 * p / 3.0, abs=1e-12
        )

    def test_closed_form_depolarizing_expectation(self):
        """n = 6 oracle vs the analytic depolarizing formula, to 1e-9.

        A depolarizing channel of strength p after the final RX of each
        qubit (depth 1: the last gate touching every qubit) scales each
        <Z_u Z_v> by eta^2 with eta = 1 - 4p/3, so the noisy cut expectation
        has a closed form in terms of the ideal state.
        """
        problem = _problem()
        p = 0.07
        circuit, gammas, betas = build_parametric_qaoa_circuit(problem, 1)
        values = {gammas[0]: 0.4, betas[0]: 0.3}
        ideal = StatevectorSimulator().run(circuit, values).probabilities()
        eta = 1.0 - 4.0 * p / 3.0
        indices = np.arange(ideal.size)
        expected = 0.0
        for u, v, weight in problem.graph.edges:
            signs = 1.0 - 2.0 * (((indices >> u) & 1) ^ ((indices >> v) & 1))
            expected += weight / 2.0 * (1.0 - eta * eta * float(ideal @ signs))
        model = NoiseModel().add_channel(DepolarizingChannel(p), gates=("rx",))
        rho = DensityMatrixSimulator().run(circuit, values, noise_model=model)
        noisy = rho.expectation_diagonal(problem.cost_diagonal())
        assert noisy == pytest.approx(expected, abs=1e-9)

    def test_purity_decays_monotonically_with_depolarizing_strength(self):
        problem = _problem(nodes=4)
        circuit, values = _bound_circuit(problem, 1)
        simulator = DensityMatrixSimulator()
        purities = []
        for strength in (0.0, 0.01, 0.05, 0.2):
            model = NoiseModel.uniform_depolarizing(strength) if strength else None
            rho = simulator.run(circuit, values, noise_model=model)
            purities.append(rho.purity())
        assert purities[0] == pytest.approx(1.0, abs=1e-10)
        assert all(a > b for a, b in zip(purities, purities[1:]))

    def test_amplitude_damping_drives_towards_ground_state(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        model = NoiseModel().add_channel(AmplitudeDampingChannel(1.0))
        rho = DensityMatrixSimulator().run(circuit, noise_model=model)
        # Full damping after every gate collapses everything onto |00>.
        assert rho.probability("00") == pytest.approx(1.0, abs=1e-12)

    def test_expectation_and_probabilities_entry_points(self):
        problem = _problem(nodes=4)
        circuit, values = _bound_circuit(problem, 1)
        simulator = DensityMatrixSimulator()
        hamiltonian = problem.cost_hamiltonian()
        direct = simulator.expectation(circuit, hamiltonian, values)
        via_run = simulator.run(circuit, values).expectation(hamiltonian)
        assert direct == pytest.approx(via_run, abs=1e-12)
        probabilities = simulator.probabilities(circuit, values)
        assert probabilities.sum() == pytest.approx(1.0, abs=1e-10)
        with pytest.raises(SimulationError):
            simulator.expectation(
                QuantumCircuit(2), hamiltonian, None
            )  # observable/register mismatch


# ---------------------------------------------------------------------------
# Readout errors and mitigation
# ---------------------------------------------------------------------------

class TestReadoutErrorModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReadoutErrorModel(0)
        with pytest.raises(ConfigurationError):
            ReadoutErrorModel(2, p0_to_1=-0.1)
        with pytest.raises(ConfigurationError):
            ReadoutErrorModel(2, p0_to_1=1.5)
        with pytest.raises(ConfigurationError):
            ReadoutErrorModel(2, p0_to_1=[0.1, 0.2, 0.3])  # wrong length
        assert ReadoutErrorModel(2).is_trivial
        assert not ReadoutErrorModel(2, p0_to_1=0.01).is_trivial

    def test_assignment_and_confusion_matrices(self):
        readout = ReadoutErrorModel(2, p0_to_1=[0.1, 0.2], p1_to_0=[0.05, 0.0])
        matrix = readout.assignment_matrix(0)
        assert np.allclose(matrix, [[0.9, 0.05], [0.1, 0.95]])
        assert readout.flip_probabilities(1) == (0.2, 0.0)
        confusion = readout.confusion_matrix()
        assert confusion.shape == (4, 4)
        assert np.allclose(confusion.sum(axis=0), 1.0)  # column-stochastic
        # Dense confusion matrix equals the per-qubit strided application.
        rng = np.random.default_rng(4)
        distribution = rng.random(4)
        distribution /= distribution.sum()
        assert np.allclose(
            confusion @ distribution, readout.apply(distribution), atol=1e-14
        )

    def test_mitigation_round_trip_is_exact(self):
        readout = ReadoutErrorModel(4, p0_to_1=0.03, p1_to_0=0.08)
        rng = np.random.default_rng(9)
        distribution = rng.random(16)
        distribution /= distribution.sum()
        corrupted = readout.apply(distribution)
        assert not np.allclose(corrupted, distribution)
        recovered = readout.mitigate(corrupted)
        assert np.abs(recovered - distribution).max() < 1e-12

    def test_mitigation_clip_projects_to_simplex(self):
        readout = ReadoutErrorModel(1, p0_to_1=0.2)
        # A frequency vector that inverts to a negative quasi-probability.
        frequencies = np.array([1.0, 0.0])
        mitigated = readout.mitigate(frequencies, clip=True)
        assert np.all(mitigated >= 0.0)
        assert mitigated.sum() == pytest.approx(1.0)

    def test_singular_assignment_raises_on_mitigate(self):
        readout = ReadoutErrorModel(1, p0_to_1=0.5, p1_to_0=0.5)
        corrupted = readout.apply(np.array([0.3, 0.7]))
        with pytest.raises(SimulationError):
            readout.mitigate(corrupted)

    def test_dimension_mismatch(self):
        readout = ReadoutErrorModel(2, p0_to_1=0.1)
        with pytest.raises(SimulationError):
            readout.apply(np.ones(8) / 8.0)


class TestReadoutThroughShotEstimator:
    def test_validation(self):
        diagonal = np.arange(4.0)
        with pytest.raises(ConfigurationError):
            ShotEstimator(diagonal, shots=10, mitigate_readout=True)
        with pytest.raises(ConfigurationError):
            ShotEstimator(
                diagonal, shots=10, readout_error=ReadoutErrorModel(3, p0_to_1=0.1)
            )

    def test_corrupted_sampling_is_seed_deterministic(self):
        problem = _problem(nodes=4)
        state = Statevector.uniform_superposition(4)
        readout = ReadoutErrorModel(4, p0_to_1=0.05, p1_to_0=0.02)
        values = [
            ShotEstimator(
                problem.cost_diagonal(), shots=200, rng=3, readout_error=readout
            ).estimate(state)
            for _ in range(2)
        ]
        assert values[0] == values[1]

    def test_mitigated_estimator_is_unbiased(self):
        """Mitigated finite-shot estimates centre on the true expectation.

        The confusion-inversion estimator is linear in the empirical
        frequencies, hence exactly unbiased: the mean over many seeded
        estimates must approach the *true* (uncorrupted) expectation, while
        the raw corrupted estimator keeps a systematic offset.
        """
        problem = _problem(nodes=4)
        # A state concentrated on a high-cut assignment: readout flips move
        # probability towards worse cuts, so the corruption has a clear sign
        # (the uniform superposition would be nearly readout-invariant).
        diagonal = problem.cost_diagonal()
        state = Statevector.from_label(format(int(np.argmax(diagonal)), "04b"))
        truth = float(state.probabilities() @ diagonal)
        readout = ReadoutErrorModel(4, p0_to_1=0.15, p1_to_0=0.1)
        corrupted_truth = float(readout.apply(state.probabilities()) @ diagonal)
        assert abs(corrupted_truth - truth) > 0.05  # the corruption is visible

        shots, repeats = 400, 200
        raw = ShotEstimator(diagonal, shots=shots, rng=7, readout_error=readout)
        mitigated = ShotEstimator(
            diagonal, shots=shots, rng=7, readout_error=readout, mitigate_readout=True
        )
        raw_mean = np.mean([raw.estimate(state) for _ in range(repeats)])
        mitigated_mean = np.mean([mitigated.estimate(state) for _ in range(repeats)])
        sigma = np.std(diagonal) / np.sqrt(shots * repeats)
        assert abs(mitigated_mean - truth) < 6.0 * sigma
        assert abs(raw_mean - corrupted_truth) < 6.0 * sigma
        assert abs(raw_mean - truth) > 3.0 * sigma  # raw stays biased


# ---------------------------------------------------------------------------
# ExpectationEvaluator density mode
# ---------------------------------------------------------------------------

class TestEvaluatorDensityMode:
    def test_requires_circuit_backend(self):
        with pytest.raises(ConfigurationError):
            ExpectationEvaluator(_problem(), 1, context=ExecutionContext(density=True))

    def test_non_pauli_model_requires_density(self):
        model = NoiseModel().add_channel(AmplitudeDampingChannel(0.1))
        with pytest.raises(ConfigurationError):
            ExpectationEvaluator(
                _problem(),
                1,
                context=ExecutionContext(backend="circuit", noise_model=model),
            )
        evaluator = ExpectationEvaluator(
            _problem(),
            1,
            context=ExecutionContext(
                backend="circuit", noise_model=model, density=True
            ),
        )
        assert np.isfinite(evaluator.expectation([0.4, 0.3]))

    def test_noiseless_density_matches_exact_oracle(self):
        problem = _problem()
        point = [0.4, 0.1, 0.3, 0.2]
        exact = ExpectationEvaluator(problem, 2).expectation(point)
        density = ExpectationEvaluator(
            problem, 2, context=ExecutionContext(backend="circuit", density=True)
        ).expectation(point)
        assert density == pytest.approx(exact, abs=1e-12)

    def test_noisy_density_is_deterministic(self):
        problem = _problem()
        model = NoiseModel.uniform_depolarizing(0.02)
        point = [0.4, 0.1, 0.3, 0.2]
        evaluators = [
            ExpectationEvaluator(
                problem,
                2,
                context=ExecutionContext(
                    backend="circuit", density=True, noise_model=model
                ),
            )
            for _ in range(2)
        ]
        values = [e.expectation(point) for e in evaluators]
        assert values[0] == values[1]
        assert not evaluators[0].is_stochastic
        assert evaluators[0].trajectories == 1

    def test_trajectory_average_converges_to_density_mode(self):
        """Trajectory estimates centre on the density evaluation, not on
        their own self-consistency: the density value is computed through a
        completely independent (Kraus) code path."""
        problem = _problem(nodes=5)
        model = NoiseModel().add_channel(DepolarizingChannel(0.08), gates=("rx", "h"))
        point = [0.5, 0.3]
        oracle = ExpectationEvaluator(
            problem,
            1,
            context=ExecutionContext(backend="circuit", density=True, noise_model=model),
        ).expectation(point)
        sampler = ExpectationEvaluator(
            problem,
            1,
            context=ExecutionContext(
                backend="circuit", noise_model=model, trajectories=600
            ),
            rng=17,
        )
        diagonal = problem.cost_diagonal()
        spread = float(diagonal.max() - diagonal.min())
        estimate = sampler.expectation(point)
        assert abs(estimate - oracle) < 4.0 * spread / np.sqrt(600)

    def test_density_with_shots_is_seed_deterministic(self):
        problem = _problem(nodes=5)
        model = NoiseModel.uniform_depolarizing(0.01)
        point = [0.5, 0.3]
        values = [
            ExpectationEvaluator(
                problem,
                1,
                context=ExecutionContext(
                    backend="circuit", density=True, noise_model=model, shots=256
                ),
                rng=9,
            ).expectation(point)
            for _ in range(2)
        ]
        assert values[0] == values[1]

    def test_density_batch_matches_scalar(self):
        problem = _problem(nodes=5)
        model = NoiseModel.uniform_depolarizing(0.02)
        matrix = np.array([[0.4, 0.3], [0.1, 0.2], [0.7, 0.5]])
        density_context = ExecutionContext(
            backend="circuit", density=True, noise_model=model
        )
        batch = ExpectationEvaluator(
            problem, 1, context=density_context
        ).expectation_batch(matrix)
        scalar = [
            ExpectationEvaluator(problem, 1, context=density_context).expectation(row)
            for row in matrix
        ]
        assert np.allclose(batch, scalar, atol=1e-12)

    def test_density_register_ceiling(self):
        problem = _problem(seed=1, nodes=13)
        with pytest.raises(ConfigurationError):
            ExpectationEvaluator(
                problem, 1, context=ExecutionContext(backend="circuit", density=True)
            )

    @pytest.mark.parametrize("backend", ["fast", "circuit"])
    def test_readout_mitigation_recovers_exact_expectation(self, backend):
        """Infinite-shot limit: corrupt + invert == exact, to fp accuracy."""
        problem = _problem()
        point = [0.4, 0.1, 0.3, 0.2]
        readout = ReadoutErrorModel(6, p0_to_1=0.04, p1_to_0=0.07)
        exact = ExpectationEvaluator(problem, 2, context=backend).expectation(point)
        raw = ExpectationEvaluator(
            problem,
            2,
            context=ExecutionContext(backend=backend, readout_error=readout),
        ).expectation(point)
        mitigated = ExpectationEvaluator(
            problem,
            2,
            context=ExecutionContext(
                backend=backend, readout_error=readout, mitigate_readout=True
            ),
        ).expectation(point)
        assert abs(raw - exact) > 1e-3  # corruption is visible
        assert mitigated == pytest.approx(exact, abs=1e-10)

    def test_readout_batch_matches_scalar(self):
        problem = _problem()
        readout = ReadoutErrorModel(6, p0_to_1=0.04, p1_to_0=0.07)
        matrix = np.array([[0.4, 0.1, 0.3, 0.2], [0.1, 0.2, 0.3, 0.4]])
        for backend in ("fast", "circuit"):
            evaluator = ExpectationEvaluator(
                problem,
                2,
                context=ExecutionContext(backend=backend, readout_error=readout),
            )
            batch = evaluator.expectation_batch(matrix)
            scalar = [evaluator.expectation(row) for row in matrix]
            assert np.allclose(batch, scalar, atol=1e-12)

    def test_readout_validation(self):
        problem = _problem()
        with pytest.raises(ConfigurationError):
            ExpectationEvaluator(
                problem, 1, context=ExecutionContext(mitigate_readout=True)
            )
        with pytest.raises(ConfigurationError):
            ExpectationEvaluator(
                problem,
                1,
                context=ExecutionContext(
                    readout_error=ReadoutErrorModel(5, p0_to_1=0.1)
                ),
            )
