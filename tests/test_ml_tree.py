"""Tests for repro.ml.tree."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.tree import RegressionTree


@pytest.fixture
def step_data(rng):
    features = rng.uniform(0, 1, size=(80, 1))
    targets = np.where(features[:, 0] < 0.5, 1.0, 3.0)
    return features, targets


class TestRegressionTree:
    def test_learns_step_function(self, step_data):
        features, targets = step_data
        model = RegressionTree(max_depth=3).fit(features, targets)
        assert model.predict([[0.2]])[0] == pytest.approx(1.0, abs=0.2)
        assert model.predict([[0.8]])[0] == pytest.approx(3.0, abs=0.2)

    def test_perfect_fit_on_training_data_when_deep(self, rng):
        features = rng.uniform(size=(30, 2))
        targets = rng.uniform(size=30)
        model = RegressionTree(max_depth=20, min_samples_leaf=1, min_samples_split=2)
        model.fit(features, targets)
        assert model.score(features, targets) > 0.95

    def test_stump_predicts_mean(self, step_data):
        features, targets = step_data
        model = RegressionTree(max_depth=1, min_samples_split=1000).fit(features, targets)
        assert model.predict([[0.3]])[0] == pytest.approx(targets.mean())

    def test_depth_and_leaves_bounded(self, step_data):
        features, targets = step_data
        model = RegressionTree(max_depth=3).fit(features, targets)
        assert model.depth() <= 3
        assert model.num_leaves() <= 2**3

    def test_constant_targets_give_single_leaf(self):
        features = np.arange(10, dtype=float).reshape(-1, 1)
        model = RegressionTree().fit(features, np.ones(10))
        assert model.num_leaves() == 1
        assert model.predict([[100.0]])[0] == pytest.approx(1.0)

    def test_min_samples_leaf_respected(self, step_data):
        features, targets = step_data
        generous = RegressionTree(max_depth=8, min_samples_leaf=1).fit(features, targets)
        strict = RegressionTree(max_depth=8, min_samples_leaf=30).fit(features, targets)
        assert strict.num_leaves() <= generous.num_leaves()

    def test_multivariate_split_selection(self, rng):
        # Only feature 1 is informative; the tree should still learn the step.
        features = rng.uniform(size=(100, 2))
        targets = np.where(features[:, 1] < 0.5, -1.0, 1.0)
        model = RegressionTree(max_depth=3).fit(features, targets)
        assert model.predict([[0.9, 0.1]])[0] == pytest.approx(-1.0, abs=0.2)
        assert model.predict([[0.1, 0.9]])[0] == pytest.approx(1.0, abs=0.2)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ModelError):
            RegressionTree(max_depth=0)
        with pytest.raises(ModelError):
            RegressionTree(min_samples_split=1)
        with pytest.raises(ModelError):
            RegressionTree(min_samples_leaf=0)

    def test_introspection_before_fit_raises(self):
        with pytest.raises(ModelError):
            RegressionTree().depth()
        with pytest.raises(ModelError):
            RegressionTree().num_leaves()
