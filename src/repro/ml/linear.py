"""Ordinary least-squares and ridge linear regression (the paper's "LM")."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ModelError
from repro.ml.base import Regressor


class LinearRegression(Regressor):
    """Ordinary least-squares regression with an intercept term."""

    def __init__(self, fit_intercept: bool = True):
        super().__init__()
        self.fit_intercept = bool(fit_intercept)
        self._coefficients: Optional[np.ndarray] = None
        self._intercept: float = 0.0

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted weight vector (one entry per feature)."""
        if self._coefficients is None:
            raise ModelError("model is not fitted")
        return self._coefficients.copy()

    @property
    def intercept(self) -> float:
        """Fitted intercept (0 when ``fit_intercept=False``)."""
        return self._intercept

    def _design_matrix(self, features: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            return np.hstack([features, np.ones((features.shape[0], 1))])
        return features

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        design = self._design_matrix(features)
        solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
        if self.fit_intercept:
            self._coefficients = solution[:-1]
            self._intercept = float(solution[-1])
        else:
            self._coefficients = solution
            self._intercept = 0.0

    def _predict(self, features: np.ndarray) -> np.ndarray:
        return features @ self._coefficients + self._intercept

    def get_params(self) -> dict:
        return {"fit_intercept": self.fit_intercept}


class RidgeRegression(Regressor):
    """L2-regularised linear regression.

    The intercept is never regularised; it is handled by centring the targets
    and features before solving the normal equations.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        super().__init__()
        if alpha < 0:
            raise ModelError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)
        self.fit_intercept = bool(fit_intercept)
        self._coefficients: Optional[np.ndarray] = None
        self._intercept: float = 0.0

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted weight vector."""
        if self._coefficients is None:
            raise ModelError("model is not fitted")
        return self._coefficients.copy()

    @property
    def intercept(self) -> float:
        """Fitted intercept."""
        return self._intercept

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        if self.fit_intercept:
            feature_means = features.mean(axis=0)
            target_mean = float(targets.mean())
            centered_features = features - feature_means
            centered_targets = targets - target_mean
        else:
            feature_means = np.zeros(features.shape[1])
            target_mean = 0.0
            centered_features = features
            centered_targets = targets

        gram = centered_features.T @ centered_features
        regularised = gram + self.alpha * np.eye(features.shape[1])
        self._coefficients = np.linalg.solve(
            regularised, centered_features.T @ centered_targets
        )
        self._intercept = target_mean - float(feature_means @ self._coefficients)

    def _predict(self, features: np.ndarray) -> np.ndarray:
        return features @ self._coefficients + self._intercept

    def get_params(self) -> dict:
        return {"alpha": self.alpha, "fit_intercept": self.fit_intercept}
