"""Ablation studies extending the paper's evaluation.

Three ablations called out in DESIGN.md:

* **Initialization strategies** — the ML warm start is compared against
  random initialization, the annealing-inspired linear ramp, and the INTERP
  heuristic (interpolating the problem's own depth-1 optimum), isolating how
  much of the speed-up is due to *learning across graphs* rather than to any
  non-random start.
* **Predictor strategy** — the paper's pooled 3-feature formulation vs
  independent per-depth models.
* **Hierarchical prediction** — the three-level variant sketched in
  Sec. I(d), which additionally feeds an intermediate depth's optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.prediction.hierarchical import HierarchicalParameterPredictor
from repro.prediction.predictor import ParameterPredictor
from repro.qaoa.ensemble import EnsembleEvaluator
from repro.qaoa.parameters import (
    interpolate_parameters,
    linear_ramp_parameters,
)
from repro.qaoa.solver import QAOASolver
from repro.utils.tables import Table


@dataclass
class InitializationAblationResult:
    """Function calls and AR per initialization strategy and depth."""

    table: Table
    config: ExperimentConfig

    def to_text(self) -> str:
        """Plain-text rendering."""
        return "\n".join(
            [
                "Ablation: initialization strategies (mean over test graphs)",
                self.table.to_text(),
            ]
        )

    def mean_fc(self, strategy: str, depth: int) -> float:
        """Mean total function calls for one strategy / depth."""
        for row in self.table:
            if row["strategy"] == strategy and row["p"] == depth:
                return row["mean_total_fc"]
        raise KeyError((strategy, depth))


def run_initialization_ablation(
    config: ExperimentConfig = None,
    context: ExperimentContext = None,
    *,
    optimizer: str = "L-BFGS-B",
) -> InitializationAblationResult:
    """Compare random, linear-ramp, INTERP and ML initializations."""
    config = config or ExperimentConfig()
    context = context or ExperimentContext(config)
    predictor = context.predictor()
    problems = context.test_problems()
    solver = QAOASolver(
        optimizer,
        tolerance=config.tolerance,
        max_iterations=config.max_iterations,
        seed=config.seed + 40,
    )

    strategies = ("random", "linear-ramp", "interp-p1", "ml-two-level")
    table = Table(["strategy", "p", "mean_total_fc", "mean_ar", "num_graphs"])
    for depth in config.target_depths:
        per_strategy: Dict[str, List[List[float]]] = {
            name: [[], []] for name in strategies
        }
        for index, problem in enumerate(problems):
            seed = config.seed + 500 + index

            # Random initialization (single restart, the naive unit cost).
            random_result = solver.solve(problem, depth, num_restarts=1, seed=seed)
            per_strategy["random"][0].append(random_result.num_function_calls)
            per_strategy["random"][1].append(random_result.approximation_ratio)

            # Linear-ramp (annealing-inspired) initialization.
            ramp_result = solver.solve(
                problem, depth, initial_parameters=linear_ramp_parameters(depth)
            )
            per_strategy["linear-ramp"][0].append(ramp_result.num_function_calls)
            per_strategy["linear-ramp"][1].append(ramp_result.approximation_ratio)

            # INTERP: optimize p=1 then interpolate the optimum to depth p.
            level1 = solver.solve(problem, 1, num_restarts=1, seed=seed)
            interp_start = interpolate_parameters(
                level1.optimal_parameters.canonicalized(), depth
            )
            interp_result = solver.solve(
                problem, depth, initial_parameters=interp_start
            )
            per_strategy["interp-p1"][0].append(
                level1.num_function_calls + interp_result.num_function_calls
            )
            per_strategy["interp-p1"][1].append(interp_result.approximation_ratio)

            # ML two-level flow (re-using the same level-1 run).
            level1_canonical = level1.optimal_parameters.canonicalized()
            predicted = predictor.predict(
                level1_canonical.gammas[0], level1_canonical.betas[0], depth
            )
            ml_result = solver.solve(problem, depth, initial_parameters=predicted)
            per_strategy["ml-two-level"][0].append(
                level1.num_function_calls + ml_result.num_function_calls
            )
            per_strategy["ml-two-level"][1].append(ml_result.approximation_ratio)

        for name in strategies:
            calls, ratios = per_strategy[name]
            table.add_row(
                strategy=name,
                p=depth,
                mean_total_fc=float(np.mean(calls)),
                mean_ar=float(np.mean(ratios)),
                num_graphs=len(problems),
            )
    return InitializationAblationResult(table=table, config=config)


@dataclass
class WarmStartSweepResult:
    """Pre-optimization quality of the shared linear-ramp warm start."""

    table: Table
    config: ExperimentConfig

    def to_text(self) -> str:
        """Plain-text rendering."""
        return "\n".join(
            [
                "Sweep: linear-ramp warm-start AR across the test ensemble "
                "(no refinement)",
                self.table.to_text(),
            ]
        )

    def mean_start_ar(self, depth: int) -> float:
        """Mean pre-optimization AR of the ramp start at one depth."""
        for row in self.table:
            if row["p"] == depth:
                return row["mean_start_ar"]
        raise KeyError(depth)


def run_linear_ramp_sweep(
    config: ExperimentConfig = None,
    context: ExperimentContext = None,
    *,
    max_workers: Optional[int] = None,
) -> WarmStartSweepResult:
    """Measure the raw (unrefined) linear-ramp start across the test graphs.

    The ramp schedule depends only on the depth, so one angle set per depth
    is fanned across the whole test ensemble through
    :class:`~repro.qaoa.ensemble.EnsembleEvaluator` — a single batched sweep
    per depth rather than a per-graph Python loop.  This isolates how much AR
    the annealing-inspired start provides before any optimization, the
    baseline against which the ML warm start's pre-refinement quality
    (:attr:`TwoLevelOutcome.predicted_approximation_ratio`) is judged.
    """
    config = config or ExperimentConfig()
    context = context or ExperimentContext(config)
    problems = context.test_problems()

    table = Table(["p", "mean_start_ar", "std_start_ar", "min_start_ar", "num_graphs"])
    for depth in config.target_depths:
        evaluator = EnsembleEvaluator(problems, depth, max_workers=max_workers)
        ratios = evaluator.approximation_ratios(
            linear_ramp_parameters(depth).to_vector()
        )
        table.add_row(
            p=depth,
            mean_start_ar=float(np.mean(ratios)),
            std_start_ar=float(np.std(ratios)),
            min_start_ar=float(np.min(ratios)),
            num_graphs=len(problems),
        )
    return WarmStartSweepResult(table=table, config=config)


@dataclass
class StrategyAblationResult:
    """Prediction errors of the pooled vs per-depth predictor strategies."""

    table: Table
    config: ExperimentConfig

    def to_text(self) -> str:
        """Plain-text rendering."""
        return "\n".join(
            [
                "Ablation: predictor training strategies (mean |%err| on the test split)",
                self.table.to_text(),
            ]
        )


def run_strategy_ablation(
    config: ExperimentConfig = None, context: ExperimentContext = None
) -> StrategyAblationResult:
    """Compare the pooled and per-depth predictor formulations."""
    config = config or ExperimentConfig()
    context = context or ExperimentContext(config)
    train, test = context.split()

    pooled = ParameterPredictor(config.model, strategy="pooled")
    pooled.fit(train, config.target_depths)
    per_depth = ParameterPredictor(config.model, strategy="per-depth")
    per_depth.fit(train, config.target_depths)

    table = Table(["strategy", "target_depth", "mean_abs_percent_error"])
    for depth in config.target_depths:
        table.add_row(
            strategy="pooled",
            target_depth=depth,
            mean_abs_percent_error=pooled.prediction_errors(test, depth).mean_abs_percent_error,
        )
        table.add_row(
            strategy="per-depth",
            target_depth=depth,
            mean_abs_percent_error=per_depth.prediction_errors(
                test, depth
            ).mean_abs_percent_error,
        )
    return StrategyAblationResult(table=table, config=config)


@dataclass
class HierarchicalAblationResult:
    """Two-level vs hierarchical (three-level) prediction quality."""

    table: Table
    config: ExperimentConfig

    def to_text(self) -> str:
        """Plain-text rendering."""
        return "\n".join(
            [
                "Ablation: two-level vs hierarchical prediction "
                "(mean |%err| on the test split)",
                self.table.to_text(),
            ]
        )


def run_hierarchical_ablation(
    config: ExperimentConfig = None,
    context: ExperimentContext = None,
    *,
    intermediate_depth: int = 2,
) -> HierarchicalAblationResult:
    """Compare the two-level predictor against the hierarchical variant."""
    config = config or ExperimentConfig()
    context = context or ExperimentContext(config)
    train, test = context.split()

    two_level = context.predictor()
    hierarchical = HierarchicalParameterPredictor(intermediate_depth, config.model)
    hierarchical_depths = [
        depth for depth in config.target_depths if depth > intermediate_depth
    ]
    hierarchical.fit(train, hierarchical_depths)

    table = Table(["approach", "target_depth", "mean_abs_percent_error"])
    for depth in hierarchical_depths:
        table.add_row(
            approach="two-level",
            target_depth=depth,
            mean_abs_percent_error=two_level.prediction_errors(
                test, depth
            ).mean_abs_percent_error,
        )
        errors = []
        for record in test:
            if not (
                record.has_depth(1)
                and record.has_depth(intermediate_depth)
                and record.has_depth(depth)
            ):
                continue
            predicted = hierarchical.predict_for_record(record, depth).to_vector()
            actual = record.entry(depth).parameters.to_vector()
            errors.extend(
                (100.0 * np.abs(predicted - actual) / np.maximum(np.abs(actual), 0.05)).tolist()
            )
        table.add_row(
            approach=f"hierarchical (p_m={intermediate_depth})",
            target_depth=depth,
            mean_abs_percent_error=float(np.mean(errors)) if errors else float("nan"),
        )
    return HierarchicalAblationResult(table=table, config=config)
