"""Smoke gate and measurements for the noise / finite-shot subsystem.

Exercises the stochastic oracle end to end — seeded determinism, fast vs
circuit backend trajectory parity, shot-estimation overhead, and the
``noise_robustness`` ablation — and appends every measurement to
``BENCH_noise.json`` in the repository root (uploaded by CI as part of the
``bench-results`` artifact, like every other ``BENCH_*.json``).

The assertions gate the *qualitative* shape only: stochastic estimates are
seed-deterministic, the two backends realise the same noise model, and
strong depolarizing noise measurably degrades the optimized approximation
ratio relative to the exact-oracle baseline.
"""

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.execution import ExecutionContext
from repro.experiments.noise_robustness import run_noise_robustness
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.maxcut import MaxCutProblem
from repro.qaoa.cost import ExpectationEvaluator
from repro.qaoa.parameters import random_parameters
from repro.quantum.noise import NoiseModel

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_noise.json"
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json(bench_smoke):
    """Write every recorded measurement to ``BENCH_noise.json``."""
    yield
    payload = {
        "benchmark": "noise",
        "smoke": bool(bench_smoke),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": _RESULTS,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _problem(num_nodes: int) -> MaxCutProblem:
    return MaxCutProblem(erdos_renyi_graph(num_nodes, 0.5, seed=num_nodes))


def _best_of(repeats: int, func) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_stochastic_oracle_is_seed_deterministic(bench_smoke):
    """Same seed, same estimate — on both backends, shots and noise alike."""
    problem = _problem(8)
    point = random_parameters(2, 0).to_vector()
    model = NoiseModel.uniform_depolarizing(0.01)
    mismatches = {}
    for backend in ("fast", "circuit"):
        estimates = [
            ExpectationEvaluator(
                problem,
                2,
                context=ExecutionContext(
                    backend=backend, shots=256, noise_model=model, trajectories=2
                ),
                rng=11,
            ).expectation(point)
            for _ in range(2)
        ]
        mismatches[backend] = abs(estimates[0] - estimates[1])
    _RESULTS["seed_determinism_abs_diff"] = mismatches
    assert all(diff == 0.0 for diff in mismatches.values()), mismatches


def test_noisy_trajectory_backend_parity(bench_smoke):
    """Fast and circuit backends realise the same noise model.

    A shared seed must reproduce the same error pattern on both backends
    (the fast path samples the equivalent gate stream), so the trajectory
    estimates agree to floating-point accuracy.
    """
    problem = _problem(8)
    point = random_parameters(2, 1).to_vector()
    model = NoiseModel.uniform_depolarizing(0.02)
    worst = 0.0
    for seed in range(3 if bench_smoke else 8):
        values = [
            ExpectationEvaluator(
                problem,
                2,
                context=ExecutionContext(
                    backend=backend, noise_model=model, trajectories=4
                ),
                rng=seed,
            ).expectation(point)
            for backend in ("fast", "circuit")
        ]
        worst = max(worst, abs(values[0] - values[1]))
    _RESULTS["backend_parity_max_abs_diff"] = worst
    assert worst < 1e-9, worst


def test_shot_estimation_overhead(bench_smoke):
    """Measure the cost of finite-shot readout over the exact readout."""
    num_nodes = 8 if bench_smoke else 12
    problem = _problem(num_nodes)
    point = random_parameters(2, 2).to_vector()
    exact = ExpectationEvaluator(problem, 2)
    sampled = ExpectationEvaluator(
        problem, 2, context=ExecutionContext(shots=1024), rng=0
    )
    exact.expectation(point), sampled.expectation(point)  # warm-up
    exact_time = _best_of(5, lambda: exact.expectation(point))
    sampled_time = _best_of(5, lambda: sampled.expectation(point))
    _RESULTS["shot_readout_overhead"] = {
        "num_nodes": num_nodes,
        "shots": 1024,
        "exact_ms": exact_time * 1e3,
        "sampled_ms": sampled_time * 1e3,
        "overhead_ratio": sampled_time / exact_time,
    }
    # The multinomial draw is O(dim); it must not dominate the FWHT evolve
    # by orders of magnitude at practical sizes.
    assert sampled_time < exact_time * 50, (exact_time, sampled_time)


def test_noise_robustness_ablation(bench_smoke, bench_config):
    """The headline gate: the ablation runs and noise visibly hurts.

    Strong depolarizing noise must cost approximation ratio relative to the
    exact-oracle baseline even at a generous shot budget; every swept cell
    must stay a valid ratio and account for its shot budget exactly.
    """
    shot_budgets = (32, 256) if bench_smoke else (64, 256, 1024)
    strengths = (0.0, 0.02) if bench_smoke else (0.0, 0.005, 0.02)
    result = run_noise_robustness(
        bench_config.scaled(max_iterations=300),
        depth=2,
        shot_budgets=shot_budgets,
        noise_strengths=strengths,
        num_graphs=2 if bench_smoke else 3,
        trajectories=2 if bench_smoke else 4,
    )
    _RESULTS["noise_robustness"] = {
        "exact_mean_ar": result.exact_mean_ar,
        "exact_mean_fc": result.exact_mean_fc,
        "rows": [dict(row) for row in result.table],
    }
    for row in result.table:
        assert 0.0 < row["mean_ar"] <= 1.0 + 1e-9, row
        assert row["mean_total_shots"] == pytest.approx(
            row["shots"] * row["mean_fc"]
        ), row
    strongest = max(strengths)
    most_shots = max(shot_budgets)
    degradation = result.ar_degradation(most_shots, strongest)
    assert degradation > 0.0, (
        f"depolarizing strength {strongest} should degrade the optimized AR "
        f"below the exact baseline {result.exact_mean_ar:.4f}, measured "
        f"degradation {degradation:+.4f}"
    )


def test_exact_configuration_is_unchanged(bench_smoke):
    """shots=None, noise_model=None stays the exact oracle on both backends."""
    problem = _problem(8)
    point = random_parameters(2, 3).to_vector()
    fast = ExpectationEvaluator(problem, 2).expectation(point)
    circuit = ExpectationEvaluator(problem, 2, context="circuit").expectation(point)
    _RESULTS["exact_backend_abs_diff"] = abs(fast - circuit)
    assert fast == pytest.approx(circuit, abs=1e-9)
    assert ExpectationEvaluator(problem, 2).shots_used == 0
