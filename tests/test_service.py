"""Solver service: job lifecycle, caching, coalescing, timeouts, shutdown."""

import threading

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    JobCancelledError,
    JobTimeoutError,
    ServiceError,
    TransientServiceError,
)
from repro.execution import ExecutionContext
from repro.graphs import Graph, MaxCutProblem, erdos_renyi_graph
from repro.service import (
    JobStatus,
    LRUCache,
    RequestCoalescer,
    ServiceMetrics,
    SolverService,
)


@pytest.fixture(scope="module")
def problem():
    return MaxCutProblem(erdos_renyi_graph(8, 0.5, seed=7))


@pytest.fixture()
def service():
    svc = SolverService(max_workers=2)
    yield svc
    svc.shutdown()


class TestJobLifecycle:
    def test_submit_returns_handle_and_result(self, service, problem):
        handle = service.submit(problem, depth=1, seed=3)
        result = handle.result(timeout=60)
        assert handle.status is JobStatus.COMPLETED
        assert handle.done
        assert result.approximation_ratio > 0.5
        assert handle.exception() is None

    def test_unseeded_jobs_run_independently(self, service, problem):
        first = service.submit(problem, depth=1)
        second = service.submit(problem, depth=1)
        first.result(timeout=60)
        second.result(timeout=60)
        assert not first.from_cache and not second.from_cache
        assert not first.deduplicated and not second.deduplicated

    def test_failed_job_reraises(self, service):
        def boom():
            raise ValueError("intentional")

        handle = service.submit_callable(boom)
        with pytest.raises(ValueError, match="intentional"):
            handle.result(timeout=30)
        assert handle.status is JobStatus.FAILED
        assert isinstance(handle.exception(), ValueError)

    def test_invalid_depth_rejected(self, service, problem):
        with pytest.raises(ConfigurationError):
            service.submit(problem, depth=0)

    def test_result_wait_timeout(self, service):
        release = threading.Event()
        handle = service.submit_callable(lambda: release.wait(30))
        with pytest.raises(JobTimeoutError):
            handle.result(timeout=0.05)
        release.set()
        handle.result(timeout=30)

    def test_cancel_pending_job(self):
        service = SolverService(max_workers=1)
        try:
            blocker = threading.Event()
            running = threading.Event()

            def occupy():
                running.set()
                blocker.wait(30)

            service.submit_callable(occupy)
            assert running.wait(5)
            victim = service.submit_callable(lambda: None)
            assert victim.cancel()
            assert victim.status is JobStatus.CANCELLED
            with pytest.raises(JobCancelledError):
                victim.result(timeout=5)
            blocker.set()
        finally:
            service.shutdown()

    def test_cannot_cancel_running_job(self):
        service = SolverService(max_workers=1)
        try:
            started = threading.Event()
            release = threading.Event()

            def wait_for_release():
                started.set()
                release.wait(30)
                return "done"

            handle = service.submit_callable(wait_for_release)
            assert started.wait(5)
            assert not handle.cancel()
            release.set()
            assert handle.result(timeout=30) == "done"
        finally:
            service.shutdown()


class TestTimeouts:
    def test_job_expired_in_queue_fails_without_running(self):
        clock = [0.0]
        service = SolverService(max_workers=1, clock=lambda: clock[0])
        try:
            blocker = threading.Event()
            running = threading.Event()

            def occupy():
                running.set()
                blocker.wait(30)

            service.submit_callable(occupy)
            assert running.wait(5)
            ran = threading.Event()
            victim = service.submit_callable(ran.set, timeout=10.0)
            clock[0] = 100.0  # expire the queued job, then free the worker
            blocker.set()
            with pytest.raises(JobTimeoutError):
                victim.result(timeout=10)
            assert not ran.is_set()
        finally:
            service.shutdown()

    def test_overrunning_job_fails_post_hoc(self):
        clock = [0.0]
        service = SolverService(max_workers=1, clock=lambda: clock[0])
        try:
            def slow():
                clock[0] += 100.0  # simulated long solve
                return "late"

            handle = service.submit_callable(slow, timeout=1.0)
            with pytest.raises(JobTimeoutError):
                handle.result(timeout=10)
        finally:
            service.shutdown()


class TestRetries:
    def test_transient_failures_retried(self, service):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientServiceError("blip")
            return "recovered"

        handle = service.submit_callable(flaky)
        # The module fixture's service allows 1 retry; use a dedicated one.
        with pytest.raises(TransientServiceError):
            handle.result(timeout=30)

        svc = SolverService(max_workers=1, max_retries=3, retry_backoff=0.0)
        try:
            attempts.clear()
            handle = svc.submit_callable(flaky)
            assert handle.result(timeout=30) == "recovered"
            assert handle.retries == 2
            assert svc.metrics.to_dict()["jobs"]["retries"] == 2
        finally:
            svc.shutdown()

    def test_nontransient_failure_not_retried(self, service):
        attempts = []

        def broken():
            attempts.append(1)
            raise RuntimeError("permanent")

        handle = service.submit_callable(broken)
        with pytest.raises(RuntimeError):
            handle.result(timeout=30)
        assert len(attempts) == 1


class TestCaching:
    def test_warm_resubmission_served_from_cache(self, service, problem):
        cold = service.submit(problem, depth=1, seed=11)
        result = cold.result(timeout=60)
        warm = service.submit(problem, depth=1, seed=11)
        assert warm.from_cache
        assert warm.done
        assert warm.result(timeout=1) is result

    def test_structurally_equal_problems_share_cache(self, service):
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)]
        first = MaxCutProblem(Graph(4, edges, name="first"))
        second = MaxCutProblem(Graph(4, edges, name="second"))
        service.submit(first, depth=1, seed=5).result(timeout=60)
        warm = service.submit(second, depth=1, seed=5)
        assert warm.from_cache

    def test_different_seeds_not_shared(self, service, problem):
        service.submit(problem, depth=1, seed=1).result(timeout=60)
        other = service.submit(problem, depth=1, seed=2)
        assert not other.from_cache
        other.result(timeout=60)

    def test_unseeded_solves_never_cached(self, service, problem):
        service.submit(problem, depth=1).result(timeout=60)
        again = service.submit(problem, depth=1)
        assert not again.from_cache
        again.result(timeout=60)

    def test_program_cache_shared_across_depths_and_jobs(self, service, problem):
        service.expectation(problem, 1, [0.1, 0.2], timeout=30)
        service.expectation(problem, 1, [0.3, 0.4], timeout=30)
        program_stats = service.metrics.to_dict()["caches"]["program"]
        assert program_stats["misses"] == 1
        assert program_stats["hits"] == 1


class TestDeduplication:
    def test_identical_inflight_submissions_coalesce(self):
        service = SolverService(max_workers=1)
        try:
            blocker = threading.Event()
            running = threading.Event()

            def occupy():
                running.set()
                blocker.wait(30)

            service.submit_callable(occupy)
            assert running.wait(5)
            problem = MaxCutProblem(erdos_renyi_graph(8, 0.5, seed=2))
            primary = service.submit(problem, depth=1, seed=9)
            duplicates = [service.submit(problem, depth=1, seed=9) for _ in range(5)]
            assert all(dup.deduplicated for dup in duplicates)
            blocker.set()
            result = primary.result(timeout=60)
            for dup in duplicates:
                assert dup.result(timeout=30) is result
            jobs = service.metrics.to_dict()["jobs"]
            assert jobs["deduplicated"] == 5
            # One real solve fulfilled six handles.
            assert jobs["completed"] >= 1
        finally:
            service.shutdown()


class TestExpectationCoalescing:
    def test_concurrent_requests_batched(self, problem):
        service = SolverService(max_workers=2, coalesce_max_wait_ms=25.0)
        try:
            num_requests = 16
            start = threading.Barrier(num_requests)
            values = [None] * num_requests
            vector = [0.4, 0.3]

            def request(index):
                start.wait(5)
                values[index] = service.expectation(problem, 1, vector, timeout=30)

            threads = [
                threading.Thread(target=request, args=(i,))
                for i in range(num_requests)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
            assert all(value is not None for value in values)
            # Bit-identical: every request saw the same batched evaluation.
            assert len({repr(value) for value in values}) == 1
            coalescer = service.metrics.to_dict()["coalescer"]
            assert coalescer["batched_requests"] == num_requests
            assert coalescer["batches"] < num_requests
            assert coalescer["largest_batch"] > 1
        finally:
            service.shutdown()

    def test_batch_matches_direct_evaluation(self, problem):
        from repro.qaoa import ExpectationEvaluator

        service = SolverService(max_workers=1)
        try:
            vector = [0.25, 0.15]
            batched = service.expectation(problem, 1, vector, timeout=30)
            direct = ExpectationEvaluator(problem, 1).expectation(vector)
            assert batched == pytest.approx(direct, abs=1e-12)
        finally:
            service.shutdown()

    def test_coalescer_standalone_flush_on_max_batch(self, problem):
        from repro.qaoa import ExpectationEvaluator

        metrics = ServiceMetrics()
        coalescer = RequestCoalescer(max_batch=4, max_wait_ms=10_000.0, metrics=metrics)
        coalescer.start()
        try:
            evaluator = ExpectationEvaluator(problem, 1)
            futures = [
                coalescer.submit("k", evaluator, [0.1 * i, 0.2]) for i in range(4)
            ]
            values = [future.result(timeout=10) for future in futures]
            assert len(values) == 4
            snapshot = metrics.to_dict()["coalescer"]
            assert snapshot["batches"] == 1
            assert snapshot["largest_batch"] == 4
        finally:
            coalescer.stop()

    def test_stopped_coalescer_degrades_to_inline(self, problem):
        from repro.qaoa import ExpectationEvaluator

        coalescer = RequestCoalescer(max_batch=8, max_wait_ms=5.0)
        evaluator = ExpectationEvaluator(problem, 1)
        value = coalescer.submit("k", evaluator, [0.3, 0.2]).result(timeout=5)
        direct = ExpectationEvaluator(problem, 1).expectation([0.3, 0.2])
        assert value == pytest.approx(direct, abs=1e-12)


class TestShutdown:
    def test_shutdown_drains_queued_jobs(self, problem):
        service = SolverService(max_workers=1)
        handles = [service.submit(problem, depth=1, seed=index) for index in range(3)]
        service.shutdown(drain=True)
        for handle in handles:
            handle.result(timeout=5)  # all ran to completion

    def test_shutdown_without_drain_cancels_pending(self):
        service = SolverService(max_workers=1)
        blocker = threading.Event()
        running = threading.Event()

        def occupy():
            running.set()
            blocker.wait(30)
            return "survivor"

        first = service.submit_callable(occupy)
        assert running.wait(5)
        pending = [service.submit_callable(lambda: None) for _ in range(3)]
        # Cancel the queue while the worker is still busy, then release it.
        service.shutdown(wait=False, drain=False)
        blocker.set()
        assert first.result(timeout=10) == "survivor"
        for handle in pending:
            assert handle.status is JobStatus.CANCELLED

    def test_submit_after_shutdown_rejected(self, problem):
        service = SolverService(max_workers=1)
        service.shutdown()
        with pytest.raises(ServiceError):
            service.submit(problem, depth=1, seed=0)

    def test_context_manager(self, problem):
        with SolverService(max_workers=1) as service:
            handle = service.submit(problem, depth=1, seed=0)
        handle.result(timeout=5)

    def test_bounded_queue_rejects_overflow(self):
        service = SolverService(max_workers=1, max_queue=1)
        try:
            blocker = threading.Event()
            running = threading.Event()

            def occupy():
                running.set()
                blocker.wait(30)

            service.submit_callable(occupy)
            assert running.wait(5)
            service.submit_callable(lambda: None)  # fills the queue slot
            with pytest.raises(ServiceError, match="full"):
                for _ in range(10):
                    service.submit_callable(lambda: None)
            blocker.set()
        finally:
            service.shutdown()


class TestMetrics:
    def test_injectable_clock_latencies(self):
        clock = [0.0]
        metrics = ServiceMetrics(clock=lambda: clock[0])
        metrics.job_submitted()
        clock[0] = 2.0
        metrics.job_completed(latency=2.0, queue_wait=0.5, run_time=1.5)
        snapshot = metrics.to_dict()
        assert snapshot["latency"]["job_seconds"]["p50"] == 2.0
        assert snapshot["latency"]["queue_wait_seconds"]["p99"] == 0.5
        assert snapshot["uptime_seconds"] == 2.0

    def test_percentiles_interpolate(self):
        metrics = ServiceMetrics()
        for value in range(1, 101):
            metrics.job_completed(latency=float(value))
        snapshot = metrics.to_dict()["latency"]["job_seconds"]
        assert snapshot["count"] == 100
        assert 50.0 <= snapshot["p50"] <= 51.0
        assert 99.0 <= snapshot["p99"] <= 100.0

    def test_service_snapshot_shape(self, service, problem):
        service.submit(problem, depth=1, seed=0).result(timeout=60)
        snapshot = service.metrics.to_dict()
        assert set(snapshot) == {
            "uptime_seconds",
            "jobs",
            "coalescer",
            "caches",
            "resilience",
            "queue",
            "latency",
        }
        assert snapshot["jobs"]["completed"] >= 1
        assert snapshot["queue"]["depth"] == 0

    def test_queue_depth_gauge_returns_to_zero(self, service, problem):
        handles = [service.submit(problem, depth=1, seed=i) for i in range(4)]
        for handle in handles:
            handle.result(timeout=60)
        assert service.queue_depth == 0
        assert service.metrics.to_dict()["queue"]["max_depth"] >= 1


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh recency
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            LRUCache(0)


class TestExecutionContextIntegration:
    def test_service_with_shot_context(self):
        problem = MaxCutProblem(erdos_renyi_graph(6, 0.5, seed=4))
        context = ExecutionContext(backend="fast", shots=64)
        with SolverService(context, max_workers=1) as service:
            result = service.submit(problem, depth=1, seed=0).result(timeout=60)
        assert result.num_shots > 0

    def test_deterministic_across_service_instances(self):
        problem = MaxCutProblem(erdos_renyi_graph(6, 0.5, seed=4))
        with SolverService(max_workers=2) as first:
            a = first.submit(problem, depth=1, seed=42).result(timeout=60)
        with SolverService(max_workers=2) as second:
            b = second.submit(problem, depth=1, seed=42).result(timeout=60)
        assert a.optimal_expectation == b.optimal_expectation
        assert np.allclose(
            a.optimal_parameters.to_vector(), b.optimal_parameters.to_vector()
        )
